//! Lightweight run profiling: where a simulation spends its time.
//!
//! Every [`crate::World::run`] fills one [`SimProfile`] as a side effect:
//! how many events of each kind the queue popped, and wall-clock seconds
//! attributed per subsystem (workload issue, relay scheduling, mempool
//! admission, block assembly, snapshotting, fault sampling). The counters
//! are observational only — no profile read ever feeds back into the
//! simulation, so instrumented and uninstrumented runs stay bit-identical.
//!
//! The experiment harness emits these numbers into `BENCH_pipeline.json`,
//! giving performance work per-phase attribution instead of a single wall
//! number.

use cn_stats::ShardTiming;
use std::time::Duration;

/// Counters and per-subsystem timings for one simulation run.
///
/// `Clone` but deliberately not `Copy`: the per-observer vectors grow
/// with the fleet.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimProfile {
    /// Total events popped from the queue.
    pub events_popped: u64,
    /// Per-stakeholder transaction deliveries processed (including
    /// fault-injected duplicates).
    pub deliveries: u64,
    /// User transactions issued (scam and accelerated included).
    pub user_txs: u64,
    /// Pool self-interest transfers issued.
    pub self_txs: u64,
    /// Blocks mined and connected (stale-tip orphans excluded).
    pub blocks: u64,
    /// Snapshot ticks handled (recorded or lost to observer downtime).
    pub snapshot_ticks: u64,
    /// Snapshots actually recorded, per fleet observer (index-aligned
    /// with the scenario's `observers`).
    pub observer_snapshots: Vec<u64>,
    /// Snapshots recorded while the observer's view was known-degraded
    /// (eclipse windows), per fleet observer.
    pub observer_degraded: Vec<u64>,
    /// Templates built on the assembler's incremental all-Normal fast
    /// path, summed over every pool in the run.
    pub assembly_incremental_hits: u64,
    /// Templates that needed the assembler's full classify-and-rebuild
    /// path, summed over every pool in the run.
    pub assembly_full_rebuilds: u64,
    /// Full rebuilds whose priority map carried at least one Accelerate
    /// entry, summed over every pool (one rebuild can count under several
    /// reasons).
    pub rebuilds_with_accelerate: u64,
    /// Full rebuilds carrying at least one Decelerate entry.
    pub rebuilds_with_decelerate: u64,
    /// Full rebuilds carrying at least one Exclude entry.
    pub rebuilds_with_exclude: u64,
    /// Deliveries whose payload's admission-precheck memo was already
    /// populated by an earlier delivery of the same transaction — work
    /// shared across the fan-out instead of recomputed per node.
    pub admission_precheck_hits: u64,
    /// Same-timestamp delivery runs drained as one multi-event batch.
    pub delivery_batches: u64,
    /// Deliveries handled inside multi-event batches (singletons take the
    /// plain serial path and are not counted here).
    pub batched_deliveries: u64,
    /// Largest same-timestamp delivery batch drained.
    pub max_delivery_batch: u64,
    /// Wall-clock seconds for the whole run.
    pub wall: f64,
    /// Seconds building and booking workload transactions (fee sampling,
    /// coin selection, transaction construction).
    pub issue: f64,
    /// Seconds scheduling fault-free relay deliveries.
    pub relay: f64,
    /// Seconds scheduling deliveries through an enabled link-fault plan
    /// (loss/spike/reorder/duplicate draws dominate this path).
    pub faults: f64,
    /// Seconds admitting deliveries into per-node Mempool views (the
    /// `admission` half of what schema ≤ 5 reported as one `mempool`
    /// bucket).
    pub admission: f64,
    /// Seconds evicting confirmed/conflicted transactions from every
    /// stakeholder view on block connect (previously buried inside
    /// `assembly`).
    pub eviction: f64,
    /// Seconds assembling templates, validating and connecting blocks
    /// (per-view eviction excluded — see `eviction`).
    pub assembly: f64,
    /// Seconds recording the primary observer's snapshots (cap
    /// enforcement included).
    pub snapshot: f64,
    /// Seconds recording the non-primary fleet observers' snapshots —
    /// the marginal cost of running a fleet instead of one node.
    pub fleet: f64,
    /// Seconds pre-generating user-transaction draw batches (fork-join
    /// region, wall time as seen by the event loop).
    pub pregen: f64,
    /// Pre-generation batches produced.
    pub pregen_batches: u64,
    /// Draw records pre-generated (a multiple of the batch size; the run
    /// may end before consuming the final batch).
    pub pregen_items: u64,
    /// Draw records claimed per worker slot, summed over every batch.
    pub pregen_shard_items: Vec<u64>,
    /// Seconds each worker slot spent inside pre-generation regions,
    /// summed over every batch (CPU time across workers, not wall time —
    /// compare against `pregen` for the fork-join speedup).
    pub pregen_shard_seconds: Vec<f64>,
}

impl SimProfile {
    /// Events per wall-clock second; 0 when the run was too fast to time.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall > 0.0 {
            self.events_popped as f64 / self.wall
        } else {
            0.0
        }
    }

    /// Adds `d` to the subsystem slot selected by `slot`.
    pub(crate) fn credit(slot: &mut f64, d: Duration) {
        *slot += d.as_secs_f64();
    }

    /// Folds one pre-generation batch's per-worker shard timings into the
    /// cumulative per-slot breakdown.
    pub(crate) fn note_pregen(&mut self, shards: &[ShardTiming]) {
        self.pregen_batches += 1;
        if self.pregen_shard_items.len() < shards.len() {
            self.pregen_shard_items.resize(shards.len(), 0);
            self.pregen_shard_seconds.resize(shards.len(), 0.0);
        }
        for (slot, shard) in shards.iter().enumerate() {
            self.pregen_items += shard.items;
            self.pregen_shard_items[slot] += shard.items;
            self.pregen_shard_seconds[slot] += shard.seconds;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_per_sec_guards_zero_wall() {
        let p = SimProfile::default();
        assert_eq!(p.events_per_sec(), 0.0);
        let p = SimProfile { events_popped: 100, wall: 2.0, ..SimProfile::default() };
        assert!((p.events_per_sec() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn note_pregen_accumulates_per_slot() {
        let mut p = SimProfile::default();
        p.note_pregen(&[
            ShardTiming { items: 600, seconds: 0.5 },
            ShardTiming { items: 424, seconds: 0.4 },
        ]);
        p.note_pregen(&[ShardTiming { items: 1024, seconds: 0.9 }]);
        assert_eq!(p.pregen_batches, 2);
        assert_eq!(p.pregen_items, 2048);
        assert_eq!(p.pregen_shard_items, vec![1624, 424]);
        assert!((p.pregen_shard_seconds[0] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn credit_accumulates() {
        let mut slot = 0.0;
        SimProfile::credit(&mut slot, Duration::from_millis(250));
        SimProfile::credit(&mut slot, Duration::from_millis(750));
        assert!((slot - 1.0).abs() < 1e-9);
    }
}
