//! Scenario configuration: everything that varies between experiments.

use crate::congestion::CongestionProfile;
use cn_chain::{Params, Timestamp};
use cn_mempool::MempoolPolicy;
use cn_net::{AdversaryPlan, FaultPlan};
use serde::{Deserialize, Serialize};

/// One measurement node in the observer fleet.
///
/// The paper's two datasets came from two *differently configured* nodes
/// (𝒜: default policy, 8 peers; ℬ: no fee floor, 125 peers), and its
/// conclusions inherit whatever that one vantage point happened to see.
/// A fleet generalizes this: each observer gets its own peer count,
/// admission policy, Mempool cap, and latency tier, and the reconciliation
/// layer in `cn-core` merges their views.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObserverConfig {
    /// Display label, used in reports and reconciliation output.
    pub label: String,
    /// Peer count — the node's degree in the P2P graph (8 for dataset
    /// 𝒜's default node, 125 for ℬ's).
    pub peers: usize,
    /// Mempool acceptance policy (dataset ℬ used `accept_all`).
    pub policy: MempoolPolicy,
    /// Mempool size cap in vbytes (Bitcoin Core's `-maxmempool`); worst
    /// descendant-rate packages are evicted beyond it. `None` = no cap.
    pub max_mempool_vsize: Option<u64>,
    /// Latency tier: multiplies the node's first-arrival delays. 1.0 is
    /// a well-connected datacenter node; >1.0 models a vantage point
    /// behind slow links (a home connection, a distant region).
    pub latency_factor: f64,
}

impl ObserverConfig {
    /// The paper's dataset-𝒜 analog: default policy, 8 peers, no cap —
    /// the single observer every pre-fleet scenario ran with.
    pub fn default_node() -> ObserverConfig {
        ObserverConfig {
            label: "obs0".into(),
            peers: 8,
            policy: MempoolPolicy::default(),
            max_mempool_vsize: None,
            latency_factor: 1.0,
        }
    }

    /// Renames the observer.
    pub fn named(mut self, label: impl Into<String>) -> ObserverConfig {
        self.label = label.into();
        self
    }
}

impl Default for ObserverConfig {
    fn default() -> ObserverConfig {
        ObserverConfig::default_node()
    }
}

/// A misbehaviour (or the absence of one) a pool can exhibit.
/// Behaviours compose — a pool may both self-accelerate and sell
/// dark-fee acceleration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PoolBehavior {
    /// Accelerate transactions touching the pool's own wallets (§5.2).
    SelfInterest,
    /// Accelerate transactions touching the named partner pools' wallets
    /// (the ViaBTC–1THash/SlushPool collusion of Table 2).
    Collude {
        /// Names of the partner pools whose transactions are favoured.
        partners: Vec<String>,
    },
    /// Operate a dark-fee acceleration service and honour its orders (§5.4).
    DarkFee {
        /// Quoting premium over the top of the Mempool (≥ 1.0).
        premium: f64,
    },
    /// Decelerate (or, with `exclude`, refuse) payments to the scam
    /// address (§5.3's hypothesis).
    CensorScam {
        /// Hard censorship instead of deprioritization.
        exclude: bool,
    },
}

/// One mining pool's configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Display name (also the coinbase marker tag).
    pub name: String,
    /// Relative hash rate (normalized across pools by the runner).
    pub hash_rate: f64,
    /// Number of reward wallets the pool rotates through (Figure 8a).
    pub wallet_count: usize,
    /// Misbehaviours, if any.
    pub behaviors: Vec<PoolBehavior>,
    /// When true, this pool's node accepts below-floor (even zero-fee)
    /// transactions — the §4.2.3 deviation observed for F2Pool, ViaBTC
    /// and BTC.com.
    pub accepts_low_fee: bool,
}

impl PoolConfig {
    /// A norm-following pool.
    pub fn honest(name: impl Into<String>, hash_rate: f64, wallet_count: usize) -> PoolConfig {
        PoolConfig {
            name: name.into(),
            hash_rate,
            wallet_count,
            behaviors: Vec::new(),
            accepts_low_fee: false,
        }
    }

    /// Adds a behaviour.
    pub fn with_behavior(mut self, b: PoolBehavior) -> PoolConfig {
        self.behaviors.push(b);
        self
    }

    /// Enables below-floor acceptance.
    pub fn accepting_low_fee(mut self) -> PoolConfig {
        self.accepts_low_fee = true;
        self
    }
}

/// The scam-attack sub-scenario (§5.3).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScamConfig {
    /// Window start (seconds).
    pub window_start: Timestamp,
    /// Window end (seconds).
    pub window_end: Timestamp,
    /// Probability that a user transaction issued inside the window is a
    /// donation to the scam address.
    pub donation_prob: f64,
}

/// A complete simulation scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Name, used in reports.
    pub name: String,
    /// RNG seed; same seed ⇒ identical output.
    pub seed: u64,
    /// Simulated duration in seconds.
    pub duration: Timestamp,
    /// Chain parameters.
    pub params: Params,
    /// The pool roster.
    pub pools: Vec<PoolConfig>,
    /// Transaction arrival-rate function.
    pub congestion: CongestionProfile,
    /// Observer snapshot cadence in seconds (the paper used 15).
    pub snapshot_interval: Timestamp,
    /// Every Nth snapshot carries per-transaction entries; the rest are
    /// aggregate-only. Detailed rows are what per-transaction analyses
    /// (violation pairs, first-seen times) consume; aggregates drive the
    /// congestion series. 1 = every snapshot detailed.
    pub snapshot_detail_every: u64,
    /// The observer fleet: one or more measurement nodes, each with its
    /// own peer count, policy, cap, and latency tier. The first entry is
    /// the *primary* observer — its stream is what
    /// `SimOutput::snapshots` carries, and legacy [`FaultPlan`] observer
    /// faults (downtime, truncation) apply to it alone.
    pub observers: Vec<ObserverConfig>,
    /// Number of pure relay nodes in the P2P graph.
    pub relay_nodes: usize,
    /// Number of miner-hub nodes; pools attach round-robin. Fewer hubs
    /// than pools means some pools share a Mempool view (their policies
    /// still differ), trading view diversity for memory.
    pub miner_hubs: usize,
    /// Median per-link latency in seconds.
    pub link_latency_median: f64,
    /// Log-space sigma of per-link latency.
    pub link_latency_sigma: f64,
    /// Size of the user population.
    pub users: usize,
    /// Probability a user transaction spends a still-unconfirmed output
    /// (produces CPFP chains; Table 1 reports 19–26 %).
    pub cpfp_prob: f64,
    /// Probability a found block is mined empty — modelling SPV/stale-
    /// template mining, the source of the paper's ~1 % empty blocks.
    pub empty_block_prob: f64,
    /// Probability a user transaction offers a zero fee (only visible to
    /// no-floor nodes; §4.2.3).
    pub zero_fee_prob: f64,
    /// Per-pool rate (transactions per second) of self-interest transfers
    /// issued from pool wallets.
    pub self_interest_rate: f64,
    /// Probability a user transaction buys dark-fee acceleration instead
    /// of bidding publicly (requires a `DarkFee` pool).
    pub acceleration_demand: f64,
    /// Wallet consolidation threshold: when set, a payment whose funding
    /// wallet holds more than this many tracked outputs sweeps extra
    /// confirmed outputs (including dust) into the spend as additional
    /// inputs, so the live output population — and with it the UTXO set
    /// and the workload's ledger — stays bounded no matter how long the
    /// run is. `None` (the default) is bit-inert: every payment spends
    /// exactly one output, as before. Long-horizon scenarios (dataset-M)
    /// enable this so simulation memory is flat in chain length.
    pub wallet_consolidation: Option<usize>,
    /// Optional scam-attack window.
    pub scam: Option<ScamConfig>,
    /// Fault injection: link loss/latency spikes/duplicates, observer
    /// downtime and truncated detail dumps, stale-tip block races.
    /// [`FaultPlan::none`] (the default) is bit-inert: the run is
    /// identical to one without fault support compiled in.
    pub faults: FaultPlan,
    /// Adversarial observation scenarios aimed at the fleet: targeted
    /// eclipses, selectively-withholding peers, diffusion stalling.
    /// [`AdversaryPlan::none`] (the default) is bit-inert, like the
    /// fault plan.
    pub adversaries: AdversaryPlan,
}

impl Scenario {
    /// A small, fast scenario with sensible defaults — the starting point
    /// every test and example customizes.
    pub fn base(name: impl Into<String>, seed: u64) -> Scenario {
        Scenario {
            name: name.into(),
            seed,
            duration: 6 * 3_600,
            params: Params::mainnet(),
            pools: vec![
                PoolConfig::honest("Alpha", 0.4, 2),
                PoolConfig::honest("Beta", 0.35, 1),
                PoolConfig::honest("Gamma", 0.25, 1),
            ],
            congestion: CongestionProfile::flat(3.0),
            snapshot_interval: 15,
            snapshot_detail_every: 4,
            observers: vec![ObserverConfig::default_node()],
            relay_nodes: 12,
            miner_hubs: 3,
            link_latency_median: 1.5,
            link_latency_sigma: 0.6,
            users: 200,
            cpfp_prob: 0.12,
            empty_block_prob: 0.01,
            zero_fee_prob: 0.0,
            self_interest_rate: 0.002,
            acceleration_demand: 0.0,
            wallet_consolidation: None,
            scam: None,
            faults: FaultPlan::none(),
            adversaries: AdversaryPlan::none(),
        }
    }

    /// Normalized hash rate of pool `i`.
    pub fn normalized_hash_rate(&self, i: usize) -> f64 {
        let total: f64 = self.pools.iter().map(|p| p.hash_rate).sum();
        self.pools[i].hash_rate / total
    }

    /// Basic sanity checks, run by the world before starting.
    pub fn validate(&self) -> Result<(), String> {
        if self.pools.is_empty() {
            return Err("scenario needs at least one pool".into());
        }
        if self.pools.iter().map(|p| p.hash_rate).sum::<f64>() <= 0.0 {
            return Err("total hash rate must be positive".into());
        }
        if self.duration == 0 {
            return Err("duration must be positive".into());
        }
        if self.users == 0 {
            return Err("need at least one user".into());
        }
        if self.miner_hubs == 0 {
            return Err("need at least one miner hub".into());
        }
        if self.snapshot_detail_every == 0 {
            return Err("snapshot_detail_every must be at least 1".into());
        }
        if self.wallet_consolidation == Some(0) {
            return Err("wallet_consolidation threshold must be at least 1".into());
        }
        if self.observers.is_empty() {
            return Err("need at least one observer".into());
        }
        for (i, o) in self.observers.iter().enumerate() {
            if o.peers == 0 {
                return Err(format!("observer {i} ({}) needs at least one peer", o.label));
            }
            if !(o.latency_factor.is_finite() && o.latency_factor > 0.0) {
                return Err(format!(
                    "observer {i} ({}) latency_factor must be finite and positive, got {}",
                    o.label, o.latency_factor
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.cpfp_prob)
            || !(0.0..=1.0).contains(&self.zero_fee_prob)
            || !(0.0..=1.0).contains(&self.acceleration_demand)
            || !(0.0..=1.0).contains(&self.empty_block_prob)
        {
            return Err("probabilities must be in [0,1]".into());
        }
        for p in &self.pools {
            for b in &p.behaviors {
                if let PoolBehavior::Collude { partners } = b {
                    for partner in partners {
                        if !self.pools.iter().any(|q| &q.name == partner) {
                            return Err(format!("{} colludes with unknown pool {partner}", p.name));
                        }
                    }
                }
            }
        }
        if let Some(scam) = &self.scam {
            if scam.window_end <= scam.window_start {
                return Err("empty scam window".into());
            }
            if !(0.0..=1.0).contains(&scam.donation_prob) {
                return Err("donation_prob must be in [0,1]".into());
            }
        }
        self.faults.validate().map_err(|e| e.to_string())?;
        self.adversaries.validate(self.observers.len()).map_err(|e| e.to_string())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_scenario_validates() {
        assert_eq!(Scenario::base("t", 1).validate(), Ok(()));
    }

    #[test]
    fn normalized_rates_sum_to_one() {
        let s = Scenario::base("t", 1);
        let total: f64 = (0..s.pools.len()).map(|i| s.normalized_hash_rate(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_collusion_partner_rejected() {
        let mut s = Scenario::base("t", 1);
        s.pools[0] = s.pools[0]
            .clone()
            .with_behavior(PoolBehavior::Collude { partners: vec!["Nobody".into()] });
        assert!(s.validate().is_err());
    }

    #[test]
    fn degenerate_configs_rejected() {
        let mut s = Scenario::base("t", 1);
        s.pools.clear();
        assert!(s.validate().is_err());

        let mut s = Scenario::base("t", 1);
        s.duration = 0;
        assert!(s.validate().is_err());

        let mut s = Scenario::base("t", 1);
        s.cpfp_prob = 1.5;
        assert!(s.validate().is_err());

        let mut s = Scenario::base("t", 1);
        s.scam = Some(ScamConfig { window_start: 10, window_end: 10, donation_prob: 0.5 });
        assert!(s.validate().is_err());
    }

    #[test]
    fn invalid_fault_plan_rejected() {
        let mut s = Scenario::base("t", 1);
        s.faults.link.loss_prob = 2.0;
        assert!(s.validate().is_err());

        let mut s = Scenario::base("t", 1);
        s.faults = FaultPlan::scaled(0.5);
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn fleet_configs_validate() {
        let mut s = Scenario::base("t", 1);
        s.observers = vec![
            ObserverConfig::default_node(),
            ObserverConfig { peers: 125, latency_factor: 2.5, ..ObserverConfig::default_node() }
                .named("obs-b"),
        ];
        assert_eq!(s.validate(), Ok(()));

        let mut s = Scenario::base("t", 1);
        s.observers.clear();
        assert!(s.validate().is_err());

        let mut s = Scenario::base("t", 1);
        s.observers[0].peers = 0;
        assert!(s.validate().is_err());

        let mut s = Scenario::base("t", 1);
        s.observers[0].latency_factor = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn adversaries_must_target_real_observers() {
        use cn_net::EclipseWindow;
        let mut s = Scenario::base("t", 1);
        s.adversaries.eclipses.push(EclipseWindow { observer: 3, start_secs: 0, end_secs: 60 });
        assert!(s.validate().is_err(), "eclipse targets a non-existent observer");
        s.observers = (0..4).map(|i| ObserverConfig::default_node().named(format!("o{i}"))).collect();
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn builder_helpers_compose() {
        let p = PoolConfig::honest("X", 0.1, 2)
            .with_behavior(PoolBehavior::SelfInterest)
            .with_behavior(PoolBehavior::DarkFee { premium: 2.0 })
            .accepting_low_fee();
        assert_eq!(p.behaviors.len(), 2);
        assert!(p.accepts_low_fee);
    }
}
