//! Event sinks: streaming consumers of a run's canonical event stream.
//!
//! A [`World`](crate::World) run normally accumulates its artifacts in
//! memory and hands them back as one [`SimOutput`](crate::SimOutput). An
//! [`EventSink`] inverts that: the world pushes each block and primary-
//! observer snapshot to the sink *in canonical stream order* — the exact
//! time-sorted, blocks-first-on-ties interleaving the streaming auditor's
//! `interleave` helper would produce from the finished run — and drops the
//! records from its own memory as it goes. `cn_data::log::LogWriter` is the
//! production implementation (a compact binary event log); tests use
//! in-memory collectors.

use cn_chain::{Block, Transaction};
use cn_mempool::MempoolSnapshot;

/// A streaming consumer of a simulation run's block/snapshot event stream.
///
/// Contract: `on_start` is called exactly once, before any event, with the
/// chain's seed funding transactions (what a replay needs to rebuild the
/// initial UTXO set). After that, `on_block`/`on_snapshot` arrive in
/// canonical stream order: non-decreasing timestamps, and on a
/// same-second tie the block precedes the snapshot — byte-compatible with
/// feeding the finished run through the batch interleaver.
pub trait EventSink {
    /// The run is starting; `seeds` are the chain's seed funding
    /// transactions (the pre-simulation UTXO base).
    fn on_start(&mut self, seeds: &[Transaction]);

    /// A block was connected to the chain.
    fn on_block(&mut self, block: &Block);

    /// The primary observer recorded a mempool snapshot.
    fn on_snapshot(&mut self, snapshot: &MempoolSnapshot);
}

/// An [`EventSink`] that collects the stream in memory — the reference
/// consumer used by equivalence tests (chunked emission must reproduce
/// exactly what batch interleaving of a monolithic run yields).
#[derive(Debug, Default)]
pub struct CollectingSink {
    /// Seed funding transactions, as passed to `on_start`.
    pub seeds: Vec<Transaction>,
    /// Every block, in emission order.
    pub blocks: Vec<Block>,
    /// Every snapshot, in emission order.
    pub snapshots: Vec<MempoolSnapshot>,
    /// The interleaved order: `(is_block, index into blocks or snapshots)`.
    pub order: Vec<(bool, usize)>,
}

impl EventSink for CollectingSink {
    fn on_start(&mut self, seeds: &[Transaction]) {
        self.seeds = seeds.to_vec();
    }

    fn on_block(&mut self, block: &Block) {
        self.order.push((true, self.blocks.len()));
        self.blocks.push(block.clone());
    }

    fn on_snapshot(&mut self, snapshot: &MempoolSnapshot) {
        self.order.push((false, self.snapshots.len()));
        self.snapshots.push(snapshot.clone());
    }
}
