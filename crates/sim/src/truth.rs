//! Ground truth: what actually happened, for detector validation.
//!
//! The paper could only validate its dark-fee detector against BTC.com's
//! public acceleration-checking endpoint; the simulator knows *everything*
//! it injected, so every audit metric in `cn-core` can be scored for
//! precision and recall.

use cn_chain::{Address, Amount, FastMap, FastSet, Timestamp, Txid};

/// Why a transaction exists, from the generator's point of view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxKind {
    /// An ordinary user payment.
    User,
    /// A transfer issued from a pool's own wallet (self-interest).
    SelfInterest {
        /// The issuing pool's name.
        pool: String,
    },
    /// A donation to the scam address.
    Scam,
}

/// Ground-truth labels accumulated during a run.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    kinds: FastMap<Txid, TxKind>,
    issue_times: FastMap<Txid, Timestamp>,
    public_fees: FastMap<Txid, Amount>,
    accelerated: FastMap<Txid, (String, Amount)>,
    scam_address: Option<Address>,
}

impl GroundTruth {
    /// Records a newly issued transaction.
    pub fn record_issue(&mut self, txid: Txid, kind: TxKind, when: Timestamp, fee: Amount) {
        self.kinds.insert(txid, kind);
        self.issue_times.insert(txid, when);
        self.public_fees.insert(txid, fee);
    }

    /// Records a dark-fee acceleration purchase.
    pub fn record_acceleration(&mut self, txid: Txid, provider: impl Into<String>, dark_fee: Amount) {
        self.accelerated.insert(txid, (provider.into(), dark_fee));
    }

    /// Sets the scam address used in this run.
    pub fn set_scam_address(&mut self, addr: Address) {
        self.scam_address = Some(addr);
    }

    /// The scam address, if a scam window ran.
    pub fn scam_address(&self) -> Option<Address> {
        self.scam_address
    }

    /// The kind of a transaction.
    pub fn kind(&self, txid: &Txid) -> Option<&TxKind> {
        self.kinds.get(txid)
    }

    /// When the transaction was issued (at its origin, before propagation).
    pub fn issue_time(&self, txid: &Txid) -> Option<Timestamp> {
        self.issue_times.get(txid).copied()
    }

    /// The public fee the transaction offered.
    pub fn public_fee(&self, txid: &Txid) -> Option<Amount> {
        self.public_fees.get(txid).copied()
    }

    /// Whether (and with whom) the transaction was dark-fee accelerated.
    pub fn acceleration(&self, txid: &Txid) -> Option<(&str, Amount)> {
        self.accelerated.get(txid).map(|(p, a)| (p.as_str(), *a))
    }

    /// True when the transaction bought acceleration.
    pub fn is_accelerated(&self, txid: &Txid) -> bool {
        self.accelerated.contains_key(txid)
    }

    /// All accelerated txids.
    pub fn accelerated_txids(&self) -> FastSet<Txid> {
        self.accelerated.keys().copied().collect()
    }

    /// All txids of a given pool's self-interest transactions.
    pub fn self_interest_txids(&self, pool: &str) -> FastSet<Txid> {
        self.kinds
            .iter()
            .filter(|(_, k)| matches!(k, TxKind::SelfInterest { pool: p } if p == pool))
            .map(|(t, _)| *t)
            .collect()
    }

    /// All scam-donation txids.
    pub fn scam_txids(&self) -> FastSet<Txid> {
        self.kinds
            .iter()
            .filter(|(_, k)| **k == TxKind::Scam)
            .map(|(t, _)| *t)
            .collect()
    }

    /// Total number of recorded transactions.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txid(n: u8) -> Txid {
        Txid::from([n; 32])
    }

    #[test]
    fn records_and_queries() {
        let mut t = GroundTruth::default();
        t.record_issue(txid(1), TxKind::User, 100, Amount::from_sat(500));
        t.record_issue(
            txid(2),
            TxKind::SelfInterest { pool: "ViaBTC".into() },
            110,
            Amount::from_sat(700),
        );
        t.record_issue(txid(3), TxKind::Scam, 120, Amount::from_sat(300));
        t.record_acceleration(txid(1), "BTC.com", Amount::from_sat(90_000));

        assert_eq!(t.len(), 3);
        assert_eq!(t.issue_time(&txid(1)), Some(100));
        assert_eq!(t.public_fee(&txid(3)), Some(Amount::from_sat(300)));
        assert!(t.is_accelerated(&txid(1)));
        assert!(!t.is_accelerated(&txid(2)));
        assert_eq!(t.acceleration(&txid(1)), Some(("BTC.com", Amount::from_sat(90_000))));
        assert_eq!(t.self_interest_txids("ViaBTC"), FastSet::from_iter([txid(2)]));
        assert!(t.self_interest_txids("F2Pool").is_empty());
        assert_eq!(t.scam_txids(), FastSet::from_iter([txid(3)]));
    }

    #[test]
    fn scam_address_round_trip() {
        let mut t = GroundTruth::default();
        assert_eq!(t.scam_address(), None);
        let a = Address::from_label("scammer");
        t.set_scam_address(a);
        assert_eq!(t.scam_address(), Some(a));
    }
}
