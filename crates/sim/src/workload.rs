//! The user population: wallets, spendable outputs, transaction building.
//!
//! Keeps the simulated economy *consensus-valid*: every generated
//! transaction spends real unspent outputs, so the chain's full validation
//! (`cn_chain::validation`) accepts every mined block. Unconfirmed outputs
//! may be re-spent (producing the CPFP chains the paper must filter out),
//! but only once the parent was accepted by every stakeholder node —
//! otherwise a miner that never saw the parent could mine an orphan child.

use cn_chain::{Address, Amount, Block, Chain, FeeRate, OutPoint, Transaction, TxIn, TxOut, Txid};
use cn_stats::{LogNormal, SimRng};
use cn_chain::FastMap;
use std::sync::Arc;

/// Dust threshold below which change is folded into the fee.
const DUST: u64 = 546;

/// Hard cap on extra inputs one consolidating payment may sweep, so
/// transaction sizes stay within ordinary relay bounds.
const MAX_CONSOLIDATION_INPUTS: usize = 12;

/// Lifecycle of a spendable output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OutState {
    /// On chain.
    Confirmed,
    /// Unconfirmed but accepted by every stakeholder Mempool — safe to
    /// spend (the child can always be packaged with its parent).
    PendingOk,
    /// Unconfirmed and not universally accepted (e.g. zero-fee);
    /// unspendable until confirmation.
    PendingLocked,
}

#[derive(Clone, Debug)]
struct OutputMeta {
    value: Amount,
    owner: Address,
    state: OutState,
}

/// A transaction built by the workload, ready for broadcast.
#[derive(Clone, Debug)]
pub struct BuiltTx {
    /// The transaction (shared handle; Mempool views all reference it).
    pub tx: Arc<Transaction>,
    /// The public fee it offers.
    pub fee: Amount,
    /// The funding wallet.
    pub from: Address,
    /// The payment destination.
    pub to: Address,
    /// True when the spent output was itself unconfirmed (CPFP shape).
    pub spends_unconfirmed: bool,
}

/// Where a payment should go.
#[derive(Clone, Copy, Debug)]
pub enum PaymentTarget {
    /// A uniformly random user wallet.
    RandomUser,
    /// A specific address.
    To(Address),
}

/// The random draws one payment consumes, separated from their
/// application so issuance can be sharded across workers.
///
/// Every field is a pure function of the drawing RNG and the fixed wallet
/// population — nothing here reads the live ledger, the estimator, or the
/// backlog. [`Workload::build_payment`] then *applies* the draws against
/// mutable state serially, in event order. That split is what makes
/// batch-parallel pre-generation byte-identical to the serial loop: draws
/// for transaction *i* come from its own indexed RNG fork, so neither
/// batch size nor worker count can change any value.
#[derive(Clone, Copy, Debug)]
pub struct PaymentDraws {
    /// Candidate funding wallets (used when no explicit source is given;
    /// sparse wallets are skipped in order).
    pub candidates: [u32; 8],
    /// Recipient wallet index (used for [`PaymentTarget::RandomUser`]).
    pub recipient: u32,
    /// Raw virtual-size target sample (clamped at application time).
    pub target_vsize: f64,
    /// Raw payment-value sample (clamped against the source at
    /// application time).
    pub payment_value: f64,
}

/// Wallets and the spendable-output ledger.
#[derive(Clone, Debug)]
pub struct Workload {
    users: Vec<Address>,
    outputs: FastMap<OutPoint, OutputMeta>,
    /// Per-owner outpoint lists; entries may be stale (validated on pop).
    per_owner: FastMap<Address, Vec<OutPoint>>,
    /// Unconfirmed txids -> their not-yet-promoted outputs.
    tx_outputs: FastMap<Txid, Vec<OutPoint>>,
    payment_value: LogNormal,
    target_vsize: LogNormal,
    funding_counter: u64,
    /// When set, payments from wallets holding more than this many tracked
    /// outputs sweep extra confirmed outputs as additional inputs, keeping
    /// the live output population bounded. `None` keeps the historical
    /// one-input shape bit-for-bit.
    consolidate_above: Option<usize>,
}

impl Workload {
    /// Creates a population of `users` wallets.
    ///
    /// # Panics
    /// Panics when `users` is zero.
    pub fn new(users: usize) -> Workload {
        assert!(users > 0, "need at least one user");
        Workload {
            // A mixed population: roughly a third of users run native
            // SegWit wallets (witness-discounted spends), the rest legacy
            // P2PKH — so both serialization paths carry real traffic.
            users: (0..users)
                .map(|i| {
                    let legacy = Address::from_label(&format!("user:{i}"));
                    if i % 3 == 0 {
                        Address::p2wpkh(*legacy.payload())
                    } else {
                        legacy
                    }
                })
                .collect(),
            outputs: FastMap::default(),
            per_owner: FastMap::default(),
            tx_outputs: FastMap::default(),
            // Payments: median 0.002 BTC, heavy spread.
            payment_value: LogNormal::with_median(200_000.0, 1.2),
            // Virtual sizes: median 250 vB (the classic 1-in-2-out spans
            // ~190-230; padding models multi-input/output diversity).
            target_vsize: LogNormal::with_median(250.0, 0.45),
            funding_counter: 0,
            consolidate_above: None,
        }
    }

    /// Sets the wallet-consolidation threshold (see
    /// [`crate::scenario::Scenario::wallet_consolidation`]).
    pub fn set_consolidation(&mut self, threshold: Option<usize>) {
        self.consolidate_above = threshold;
    }

    /// The user wallets.
    pub fn users(&self) -> &[Address] {
        &self.users
    }

    /// Number of currently spendable (confirmed or pending-ok) outputs.
    pub fn spendable_count(&self) -> usize {
        self.outputs
            .values()
            .filter(|m| m.state != OutState::PendingLocked)
            .count()
    }

    /// Seeds `per_address` outputs of `value` each for every user plus
    /// every address in `extra_owners`, as pre-window coins outside any
    /// block (the simulator's stand-in for history before the
    /// observation window). Outputs are registered as confirmed.
    pub fn seed_funding(
        &mut self,
        chain: &mut Chain,
        per_address: usize,
        value: Amount,
        extra_owners: &[Address],
    ) {
        let owners: Vec<Address> =
            self.users.iter().copied().chain(extra_owners.iter().copied()).collect();
        // Batch outputs into funding transactions of at most 1000 outputs.
        let mut batch: Vec<Address> = Vec::new();
        let flush = |wl: &mut Workload, chain: &mut Chain, batch: &mut Vec<Address>| {
            if batch.is_empty() {
                return;
            }
            let mut builder = Transaction::builder().add_input_with_sizes(
                Txid::from([0xfa; 32]),
                wl.funding_counter as u32,
                2,
                0,
            );
            wl.funding_counter += 1;
            for owner in batch.iter() {
                builder = builder.add_output(TxOut::to_address(value, *owner));
            }
            let tx = builder.build();
            chain.seed_utxos(&tx);
            for (vout, owner) in batch.iter().enumerate() {
                wl.insert_output(
                    OutPoint::new(tx.txid(), vout as u32),
                    *owner,
                    value,
                    OutState::Confirmed,
                );
            }
            batch.clear();
        };
        for owner in owners {
            for _ in 0..per_address {
                batch.push(owner);
                if batch.len() == 1000 {
                    flush(self, chain, &mut batch);
                }
            }
        }
        flush(self, chain, &mut batch);
    }

    fn insert_output(&mut self, op: OutPoint, owner: Address, value: Amount, state: OutState) {
        self.outputs.insert(op, OutputMeta { value, owner, state });
        self.per_owner.entry(owner).or_default().push(op);
    }

    /// Samples everything one payment will consume from `rng`, without
    /// touching any mutable state. Apply with [`Workload::build_payment`].
    ///
    /// The draws are unconditional: every payment consumes the same number
    /// of samples regardless of how application later branches (source
    /// exhausted, fee too large, explicit recipient). That fixed shape is
    /// what keeps per-transaction RNG forks aligned across worker counts.
    pub fn draw_payment(&self, rng: &mut SimRng) -> PaymentDraws {
        let mut candidates = [0u32; 8];
        for slot in &mut candidates {
            *slot = rng.next_below(self.users.len() as u64) as u32;
        }
        PaymentDraws {
            candidates,
            recipient: rng.next_below(self.users.len() as u64) as u32,
            target_vsize: self.target_vsize.sample(rng),
            payment_value: self.payment_value.sample(rng),
        }
    }

    /// Pops a spendable output owned by `owner` (or one of the pre-drawn
    /// candidate users when `None`), optionally allowing pending-ok
    /// outputs.
    fn pick_source(
        &mut self,
        candidates: &[u32; 8],
        owner: Option<Address>,
        allow_pending: bool,
    ) -> Option<(OutPoint, OutputMeta)> {
        let candidates: Vec<Address> = match owner {
            Some(a) => vec![a],
            None => {
                // Try a few pre-drawn users; sparse wallets are skipped.
                candidates.iter().map(|&i| self.users[i as usize]).collect()
            }
        };
        for addr in candidates {
            let Some(list) = self.per_owner.get_mut(&addr) else { continue };
            // Scan from the newest entry down, skipping (but keeping)
            // currently ineligible outputs and purging stale/dust ones.
            let mut i = list.len();
            while i > 0 {
                i -= 1;
                let op = list[i];
                let Some(meta) = self.outputs.get(&op) else {
                    list.swap_remove(i); // stale (already spent)
                    continue;
                };
                if meta.value.to_sat() < 3 * DUST {
                    if self.consolidate_above.is_none() {
                        self.outputs.remove(&op); // dust: drop permanently
                        list.swap_remove(i);
                    }
                    // Under consolidation the dust stays tracked — a later
                    // sweep spends it instead of stranding it in the UTXO
                    // set forever.
                    continue;
                }
                let eligible = match meta.state {
                    OutState::Confirmed => true,
                    OutState::PendingOk => allow_pending,
                    OutState::PendingLocked => false,
                };
                if !eligible {
                    continue;
                }
                list.swap_remove(i);
                let meta = self.outputs.remove(&op).expect("checked above");
                return Some((op, meta));
            }
        }
        None
    }

    /// Pops up to `max_extra` additional *confirmed* outputs from
    /// `owner`'s list — the consolidation sweep. Dust is welcome here:
    /// being swept into a spend is how it re-enters circulation. Pending
    /// outputs are never swept, so CPFP packaging invariants are
    /// untouched.
    fn pop_confirmed_extras(
        &mut self,
        owner: Address,
        max_extra: usize,
    ) -> Vec<(OutPoint, OutputMeta)> {
        let mut extras = Vec::new();
        let Some(list) = self.per_owner.get_mut(&owner) else { return extras };
        let mut i = list.len();
        while i > 0 && extras.len() < max_extra {
            i -= 1;
            let op = list[i];
            let Some(meta) = self.outputs.get(&op) else {
                list.swap_remove(i); // stale (already spent)
                continue;
            };
            if meta.state != OutState::Confirmed {
                continue;
            }
            list.swap_remove(i);
            let meta = self.outputs.remove(&op).expect("checked above");
            extras.push((op, meta));
        }
        extras
    }

    /// Applies pre-sampled [`PaymentDraws`] against the live ledger,
    /// building a payment. Returns `None` when no eligible source output
    /// exists (the caller simply skips this arrival).
    pub fn build_payment(
        &mut self,
        draws: &PaymentDraws,
        from: Option<Address>,
        to: PaymentTarget,
        fee_rate: FeeRate,
        allow_pending: bool,
    ) -> Option<BuiltTx> {
        let (source_op, source) = self.pick_source(&draws.candidates, from, allow_pending)?;
        let spends_unconfirmed = source.state == OutState::PendingOk;
        // Consolidation sweep: once the funding wallet's tracked-output
        // list outgrows the threshold, spend extra confirmed outputs
        // alongside the primary source. The trigger and the sweep read
        // only serial ledger state, never the RNG, so pre-generated draws
        // stay aligned across worker counts.
        let extras = match self.consolidate_above {
            Some(threshold) => {
                let tracked = self.per_owner.get(&source.owner).map_or(0, Vec::len);
                if tracked > threshold {
                    let want = (tracked - threshold).min(MAX_CONSOLIDATION_INPUTS);
                    self.pop_confirmed_extras(source.owner, want)
                } else {
                    Vec::new()
                }
            }
            None => Vec::new(),
        };
        let recipient = match to {
            PaymentTarget::To(a) => a,
            PaymentTarget::RandomUser => self.users[draws.recipient as usize],
        };

        // Size the transaction: pad the unlocking data toward a sampled
        // virtual-size target (models multi-input/multi-output diversity
        // without extra UTXO bookkeeping). SegWit owners spend with
        // witness data (discounted 4x in virtual size), legacy owners
        // with scriptSig bytes.
        let target = draws.target_vsize.clamp(150.0, 3_000.0) as u64;
        // A 1-in-2-out p2pkh baseline is ~119 vB plus the script bytes.
        let pad = (target.saturating_sub(119)).clamp(60, 2_800) as usize;
        let (script_len, witness_len) = match source.owner {
            Address::P2wpkh(_) => (0usize, (pad * 4).min(9_000)),
            _ => (pad, 0usize),
        };

        // The filler input hashes its padding into existence; build it once
        // and share it between the sizing draft and the final transaction.
        let input = TxIn::with_filler(source_op.txid, source_op.vout, script_len, witness_len);
        // Swept inputs carry ordinary single-signature unlocking data
        // (~107 raw bytes: signature + pubkey), witness-discounted for
        // SegWit owners.
        let (extra_script, extra_witness) = match source.owner {
            Address::P2wpkh(_) => (0usize, 107usize),
            _ => (107usize, 0usize),
        };
        let extra_inputs: Vec<TxIn> = extras
            .iter()
            .map(|(op, _)| TxIn::with_filler(op.txid, op.vout, extra_script, extra_witness))
            .collect();

        // First pass to learn the exact vsize (amounts don't change size);
        // the builder sizes the draft without hashing a throwaway txid.
        let mut draft = Transaction::builder().add_input(input.clone());
        for extra in &extra_inputs {
            draft = draft.add_input(extra.clone());
        }
        let vsize = draft
            .add_output(TxOut::to_address(Amount::from_sat(DUST), recipient))
            .add_output(TxOut::to_address(Amount::from_sat(DUST), source.owner))
            .vsize();
        let fee = fee_rate.fee_for_vsize(vsize);

        let available = source.value.to_sat()
            + extras.iter().map(|(_, meta)| meta.value.to_sat()).sum::<u64>();
        if available <= fee.to_sat() + 2 * DUST {
            if self.consolidate_above.is_some() {
                // Put everything back: silently consuming outputs the
                // current fee level makes unaffordable would strand them
                // in the UTXO set forever, leaking memory over long runs.
                // A later, cheaper arrival (or a fatter sweep) spends them.
                self.insert_output(source_op, source.owner, source.value, source.state);
                for (op, meta) in extras {
                    self.insert_output(op, meta.owner, meta.value, meta.state);
                }
                return None;
            }
            // Too small to pay the fee meaningfully; treat as consumed dust.
            return None;
        }
        let spendable = available - fee.to_sat();
        let mut payment = draws.payment_value as u64;
        payment = payment.clamp(DUST, spendable.saturating_sub(DUST));
        let change = spendable - payment;

        let mut builder = Transaction::builder().add_input(input);
        for extra in extra_inputs {
            builder = builder.add_input(extra);
        }
        builder = builder.add_output(TxOut::to_address(Amount::from_sat(payment), recipient));
        let has_change = change >= DUST;
        if has_change {
            builder = builder.add_output(TxOut::to_address(Amount::from_sat(change), source.owner));
        }
        let tx = builder.build();
        let fee = if has_change {
            fee
        } else {
            // Change folded into the fee.
            Amount::from_sat(available - payment)
        };

        let txid = tx.txid();
        let mut produced = Vec::with_capacity(2);
        self.insert_output(
            OutPoint::new(txid, 0),
            recipient,
            Amount::from_sat(payment),
            OutState::PendingLocked,
        );
        produced.push(OutPoint::new(txid, 0));
        if has_change {
            self.insert_output(
                OutPoint::new(txid, 1),
                source.owner,
                Amount::from_sat(change),
                OutState::PendingLocked,
            );
            produced.push(OutPoint::new(txid, 1));
        }
        self.tx_outputs.insert(txid, produced);

        Some(BuiltTx {
            tx: Arc::new(tx),
            fee,
            from: source.owner,
            to: recipient,
            spends_unconfirmed,
        })
    }

    /// Marks a transaction as accepted by every stakeholder: its outputs
    /// become spendable while unconfirmed.
    pub fn mark_broadcast_ok(&mut self, txid: &Txid) {
        if let Some(ops) = self.tx_outputs.get(txid) {
            for op in ops {
                if let Some(meta) = self.outputs.get_mut(op) {
                    if meta.state == OutState::PendingLocked {
                        meta.state = OutState::PendingOk;
                    }
                }
            }
        }
    }

    /// Promotes the outputs of every transaction in a confirmed block, and
    /// registers coinbase rewards as spendable pool funds.
    pub fn on_block_confirmed(&mut self, block: &Block) {
        if let Some(cb) = block.coinbase() {
            for (vout, out) in cb.outputs().iter().enumerate() {
                if let Some(addr) = out.address() {
                    self.insert_output(
                        OutPoint::new(cb.txid(), vout as u32),
                        addr,
                        out.value,
                        OutState::Confirmed,
                    );
                }
            }
        }
        for tx in block.body() {
            if let Some(ops) = self.tx_outputs.remove(&tx.txid()) {
                for op in ops {
                    if let Some(meta) = self.outputs.get_mut(&op) {
                        meta.state = OutState::Confirmed;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::Params;

    fn setup() -> (Workload, Chain, SimRng) {
        let mut wl = Workload::new(20);
        let mut chain = Chain::new(Params::mainnet());
        wl.seed_funding(&mut chain, 3, Amount::from_btc(1), &[]);
        (wl, chain, SimRng::seed_from_u64(77))
    }

    /// Draw-then-apply in one step, as the serial world loop does.
    fn pay(
        wl: &mut Workload,
        rng: &mut SimRng,
        from: Option<Address>,
        to: PaymentTarget,
        rate: FeeRate,
        allow_pending: bool,
    ) -> Option<BuiltTx> {
        let draws = wl.draw_payment(rng);
        wl.build_payment(&draws, from, to, rate, allow_pending)
    }

    #[test]
    fn seeding_registers_spendables() {
        let (wl, chain, _) = setup();
        assert_eq!(wl.spendable_count(), 60);
        assert_eq!(chain.utxos().len(), 60);
    }

    #[test]
    fn payments_are_consensus_valid() {
        let (mut wl, chain, mut rng) = setup();
        let built = pay(&mut wl, &mut rng, None, PaymentTarget::RandomUser, FeeRate::from_sat_per_vb(10), false)
            .expect("source available");
        // The fee claimed must equal what the UTXO set computes.
        let fee = chain.utxos().fee(&built.tx).expect("spendable inputs");
        assert_eq!(fee, built.fee);
        assert!(!built.spends_unconfirmed);
        assert!(fee.to_sat() >= built.tx.vsize() * 10);
    }

    #[test]
    fn pending_outputs_locked_until_broadcast_ok() {
        let (mut wl, _, mut rng) = setup();
        // Drain one user's confirmed outputs to force a pending pick.
        let owner = wl.users()[0];
        let rate = FeeRate::from_sat_per_vb(5);
        let first = pay(&mut wl, &mut rng, Some(owner), PaymentTarget::To(owner), rate, true)
            .expect("confirmed source");
        // Self-payment: owner's new outputs are pending-locked.
        for _ in 0..2 {
            let _ = pay(&mut wl, &mut rng, Some(owner), PaymentTarget::To(owner), rate, true);
        }
        // After exhausting confirmed sources, pending-locked must not be spent.
        let before = wl.spendable_count();
        let blocked = pay(&mut wl, &mut rng, Some(owner), PaymentTarget::To(owner), rate, true);
        assert!(blocked.is_none(), "locked outputs must be unspendable");
        assert_eq!(wl.spendable_count(), before);
        // Once universally accepted, they unlock.
        wl.mark_broadcast_ok(&first.tx.txid());
        let unblocked =
            pay(&mut wl, &mut rng, Some(owner), PaymentTarget::To(owner), rate, true);
        assert!(unblocked.is_some());
        assert!(unblocked.expect("built").spends_unconfirmed);
    }

    #[test]
    fn cpfp_flag_reflects_source_state() {
        let (mut wl, _, mut rng) = setup();
        let owner = wl.users()[1];
        let rate = FeeRate::from_sat_per_vb(5);
        let parent = pay(&mut wl, &mut rng, Some(owner), PaymentTarget::To(owner), rate, false)
            .expect("confirmed source");
        wl.mark_broadcast_ok(&parent.tx.txid());
        // Exhaust remaining confirmed outputs for this owner.
        while pay(&mut wl, &mut rng, Some(owner), PaymentTarget::RandomUser, rate, false)
            .is_some()
        {}
        let child = pay(&mut wl, &mut rng, Some(owner), PaymentTarget::RandomUser, rate, true)
            .expect("pending-ok source");
        assert!(child.spends_unconfirmed);
    }

    #[test]
    fn confirmation_promotes_outputs_and_coinbase() {
        let (mut wl, _, mut rng) = setup();
        let built = pay(&mut wl, &mut rng, None, PaymentTarget::RandomUser, FeeRate::from_sat_per_vb(5), false)
            .expect("built");
        let pool_wallet = Address::from_label("pool:X:0");
        let cb = cn_chain::CoinbaseBuilder::new(0)
            .reward(pool_wallet, Amount::from_btc(6))
            .build();
        let block = cn_chain::Block::assemble(
            2,
            cn_chain::BlockHash::ZERO,
            0,
            0,
            cb,
            vec![(*built.tx).clone()],
        );
        let before = wl.spendable_count();
        wl.on_block_confirmed(&block);
        // Outputs of the confirmed tx unlocked (+2) and coinbase added (+1).
        assert_eq!(wl.spendable_count(), before + 3);
        // Pool wallet can now fund a self-interest transfer.
        let self_tx = pay(
            &mut wl,
            &mut rng,
            Some(pool_wallet),
            PaymentTarget::RandomUser,
            FeeRate::from_sat_per_vb(5),
            false,
        );
        assert!(self_tx.is_some());
        assert_eq!(self_tx.expect("built").from, pool_wallet);
    }

    #[test]
    fn fee_rate_is_honored_at_or_above_request() {
        let (mut wl, chain, mut rng) = setup();
        for rate_vb in [1u64, 10, 200] {
            let rate = FeeRate::from_sat_per_vb(rate_vb);
            let built = pay(&mut wl, &mut rng, None, PaymentTarget::RandomUser, rate, false)
                .expect("built");
            let fee = chain.utxos().fee(&built.tx).expect("valid");
            let actual = FeeRate::from_fee_and_vsize(fee, built.tx.vsize());
            assert!(actual >= rate, "requested {rate}, got {actual}");
        }
    }

    #[test]
    fn zero_fee_payment_possible() {
        let (mut wl, chain, mut rng) = setup();
        let built = pay(&mut wl, &mut rng, None, PaymentTarget::RandomUser, FeeRate::ZERO, false)
            .expect("built");
        assert_eq!(chain.utxos().fee(&built.tx).expect("valid"), Amount::ZERO);
    }

    #[test]
    fn consolidation_bounds_the_live_output_population() {
        let threshold = 4;
        let mut wl = Workload::new(3);
        wl.set_consolidation(Some(threshold));
        let mut chain = Chain::new(Params::mainnet());
        // 20 confirmed outputs per wallet — far above the threshold.
        wl.seed_funding(&mut chain, 20, Amount::from_btc(1), &[]);
        let mut rng = SimRng::seed_from_u64(9);
        let rate = FeeRate::from_sat_per_vb(5);
        let owner = wl.users()[0];
        // The first payment from the bloated wallet must sweep extras.
        let draws = wl.draw_payment(&mut rng);
        let built = wl
            .build_payment(&draws, Some(owner), PaymentTarget::To(owner), rate, false)
            .expect("source available");
        assert!(
            built.tx.inputs().len() > 1,
            "a wallet above the threshold must consolidate, got {} input(s)",
            built.tx.inputs().len()
        );
        assert!(built.tx.inputs().len() <= 1 + MAX_CONSOLIDATION_INPUTS);
        // Every input must be a real spendable output the chain knows.
        let fee = chain.utxos().fee(&built.tx).expect("all inputs spendable");
        assert_eq!(fee, built.fee);
        // Keep paying self and confirming; the tracked population must
        // settle near users × threshold instead of growing.
        let mut body = vec![(*built.tx).clone()];
        for _ in 0..60 {
            let draws = wl.draw_payment(&mut rng);
            if let Some(b) =
                wl.build_payment(&draws, None, PaymentTarget::RandomUser, rate, false)
            {
                body.push((*b.tx).clone());
            }
            for tx in body.drain(..) {
                let block = cn_chain::Block::assemble(
                    2,
                    cn_chain::BlockHash::ZERO,
                    0,
                    0,
                    cn_chain::CoinbaseBuilder::new(0).build(),
                    vec![tx],
                );
                wl.on_block_confirmed(&block);
            }
        }
        let tracked = wl.spendable_count();
        assert!(
            tracked <= 3 * (threshold + 2),
            "population should stay bounded, got {tracked}"
        );
    }

    #[test]
    fn consolidation_off_is_single_input() {
        let (mut wl, _, mut rng) = setup();
        for _ in 0..10 {
            if let Some(b) =
                pay(&mut wl, &mut rng, None, PaymentTarget::RandomUser, FeeRate::from_sat_per_vb(3), false)
            {
                assert_eq!(b.tx.inputs().len(), 1);
            }
        }
    }

    #[test]
    fn sizes_are_diverse() {
        let (mut wl, _, mut rng) = setup();
        let mut sizes = Vec::new();
        for _ in 0..30 {
            if let Some(b) = pay(
                &mut wl,
                &mut rng,
                None,
                PaymentTarget::RandomUser,
                FeeRate::from_sat_per_vb(2),
                true,
            ) {
                wl.mark_broadcast_ok(&b.tx.txid());
                sizes.push(b.tx.vsize());
            }
        }
        assert!(sizes.len() >= 20);
        let min = sizes.iter().min().expect("non-empty");
        let max = sizes.iter().max().expect("non-empty");
        assert!(max > min, "vsizes should vary: {sizes:?}");
    }
}
