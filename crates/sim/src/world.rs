//! The simulation runner: turns a [`Scenario`] into a chain, a snapshot
//! stream, and ground truth.

use crate::event::{BucketQueue, SimMillis};
use crate::profile::SimProfile;
use crate::sink::EventSink;
use crate::scenario::{PoolBehavior, Scenario};
use crate::truth::{GroundTruth, TxKind};
use crate::workload::{BuiltTx, PaymentDraws, PaymentTarget, Workload};
use cn_chain::{Address, Amount, Chain, FastMap, FeeRate, Timestamp, Txid};
use cn_mempool::{FeeEstimator, Mempool, MempoolPolicy, MempoolSnapshot};
use cn_miner::{
    AccelerationService, AddressAccelerationPolicy, CensorPolicy, CompositePolicy, DarkFeePolicy,
    MinerPolicy, MiningPool,
};
use cn_net::{LatencyModel, Network, NodeId, NodeRole, RelayPayload, Topology};
use cn_stats::{Exponential, LogNormal, Pool, SimRng, WeightedIndex};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// The urgency-quantile menu users draw their fee target from.
const URGENCY_QUANTILES: [f64; 5] = [0.3, 0.5, 0.7, 0.9, 0.97];

/// How many user-transaction draw records one pre-generation batch holds.
const PREGEN_BATCH: usize = 1024;

/// Every random value the `index`-th user transaction will consume,
/// sampled from that transaction's own RNG fork
/// (`fork_indexed("user-tx", index)`) before the event fires.
///
/// The draws are *unconditional* — flips are stored as raw uniforms and
/// compared against their probabilities at application time — so the
/// record's shape never depends on simulation state. That makes the whole
/// batch a pure function of (seed, index): any number of workers can
/// produce any slice of it, in any order, and the order-preserving join
/// hands the serial event loop exactly the values it would have drawn
/// itself.
struct TxDraws {
    /// Uniform for the scam-donation flip.
    scam_u: f64,
    /// Uniform for the dark-fee acceleration-demand flip.
    accel_u: f64,
    /// Uniform for the zero-fee deviant flip.
    zero_fee_u: f64,
    /// Index into [`URGENCY_QUANTILES`].
    q_idx: usize,
    /// Fee-noise multiplier (LogNormal(0, 0.35)).
    noise: f64,
    /// Willingness-to-pay cap in sat/kvB (heavy-tailed).
    wtp: f64,
    /// Uniform for the CPFP allow-pending flip.
    allow_pending_u: f64,
    /// Payment-construction draws (coin-selection candidates, recipient,
    /// size and value samples).
    payment: PaymentDraws,
    /// Acceleration-provider pick (0 when the scenario has no providers).
    provider: u32,
    /// Origin relay node for the broadcast fan-out.
    origin: u32,
}

/// Everything a run produces; the audit layer consumes this.
pub struct SimOutput {
    /// The scenario that produced this output.
    pub scenario: Scenario,
    /// The confirmed chain.
    pub chain: Chain,
    /// The *primary* observer's 15-second snapshot stream (datasets 𝒜/ℬ
    /// analog) — identical to `observer_streams[0]`; kept as its own
    /// field so every pre-fleet consumer reads exactly what it always
    /// read.
    pub snapshots: Vec<MempoolSnapshot>,
    /// One snapshot stream per fleet observer, index-aligned with the
    /// scenario's `observers`. The cross-observer reconciliation layer
    /// in `cn-core` merges these.
    pub observer_streams: Vec<Vec<MempoolSnapshot>>,
    /// Ground-truth labels.
    pub truth: GroundTruth,
    /// Pool names, indexed as in the scenario.
    pub pool_names: Vec<String>,
    /// Which pool (by index) mined each block, by height — ground truth
    /// for validating marker-based attribution.
    pub block_miners: Vec<usize>,
    /// Dark-fee service handles, per pool (None for non-providers).
    pub services: Vec<Option<Arc<Mutex<AccelerationService>>>>,
    /// Blocks found but lost to a stale-tip race (fault injection); they
    /// never entered the chain and are not in `block_miners`.
    pub orphaned_blocks: usize,
    /// Where the run spent its time (observational; see [`SimProfile`]).
    pub profile: SimProfile,
}

/// What a chunked [`World::run_streamed`] run hands back: aggregate
/// counters only — the artifacts themselves went to the
/// [`EventSink`](crate::sink::EventSink) and were dropped from memory.
#[derive(Debug, Clone)]
pub struct StreamedSummary {
    /// Blocks connected (and emitted to the sink).
    pub blocks: u64,
    /// Primary-observer snapshots emitted to the sink.
    pub snapshots: u64,
    /// Blocks found but lost to a stale-tip race (never emitted).
    pub orphaned_blocks: usize,
    /// Pool names, indexed as in the scenario.
    pub pool_names: Vec<String>,
    /// Where the run spent its time (observational).
    pub profile: SimProfile,
}

/// Internal event kinds.
enum Ev {
    /// A user payment is issued somewhere in the network.
    IssueUserTx,
    /// A pool issues a transfer from its own wallet.
    IssueSelfTx(usize),
    /// A transaction reaches a stakeholder node's Mempool. The payload is
    /// allocated once per broadcast and shared by every delivery (fault
    /// duplicates included). `counted` is false for fault-injected
    /// duplicate deliveries, which must not touch the delivery
    /// bookkeeping.
    Deliver { node: NodeId, payload: Arc<RelayPayload>, counted: bool },
    /// A block is found.
    MineBlock,
    /// The observer records a snapshot.
    Snapshot,
}

/// The simulation world.
pub struct World {
    scenario: Scenario,
    rng_tx: SimRng,
    rng_mine: SimRng,
    chain: Chain,
    network: Network,
    pools: Vec<MiningPool>,
    hub_of_pool: Vec<NodeId>,
    /// The primary observer's node id (fleet index 0); fleet observer
    /// `j` sits at `observer + j`.
    observer: NodeId,
    observer_count: usize,
    relay_count: usize,
    workload: Workload,
    estimator: FeeEstimator,
    truth: GroundTruth,
    /// One stream per fleet observer, index-aligned with the scenario's
    /// `observers`.
    observer_streams: Vec<Vec<MempoolSnapshot>>,
    services: Vec<Option<Arc<Mutex<AccelerationService>>>>,
    block_miners: Vec<usize>,
    /// Providers (pool indexes) selling acceleration.
    providers: Vec<usize>,
    /// Outstanding delivery bookkeeping: txid -> (pending deliveries,
    /// accepted everywhere so far).
    delivery_state: FastMap<Txid, (usize, bool)>,
    pool_picker: WeightedIndex,
    /// Stakeholder nodes (observer + miner hubs), sorted and deduped once —
    /// every broadcast fans out to exactly this set.
    stakeholders: Vec<NodeId>,
    scam_address: Address,
    snapshot_counter: u64,
    /// Sequential arrival-time stream (Poisson thinning). Forked off the
    /// transaction root so `rng_tx` itself is never advanced — it serves
    /// purely as the base for per-transaction indexed forks.
    rng_arrival: SimRng,
    /// Pre-generated user-transaction draws, consumed strictly in arrival
    /// order; refilled a batch at a time by the fork-join pool.
    pregen: VecDeque<TxDraws>,
    /// Index of the next user transaction to pre-generate.
    user_tx_drawn: u64,
    /// Self-transfers issued so far (indexed-fork input; self-transfers
    /// are rare, so their draws are taken inline rather than batched).
    self_tx_count: u64,
    /// Fork-join pool for pre-generation batches. Worker count never
    /// affects output bytes — only wall time.
    pool: Pool,
    /// Dedicated fault stream; forked unconditionally (forking never
    /// advances the parent) but only drawn from when faults are enabled,
    /// keeping `FaultPlan::none()` runs bit-identical.
    rng_fault: SimRng,
    /// Observer outage windows in sim milliseconds, precomputed from the
    /// fault plan.
    downtime_ms: Vec<(SimMillis, SimMillis)>,
    orphaned_blocks: usize,
    profile: SimProfile,
    /// When false (the chunked scale tier), ground-truth labels are not
    /// accumulated — they are pure bookkeeping, never read back during a
    /// run, so skipping them cannot change any emitted byte while keeping
    /// memory flat in run length.
    record_truth: bool,
}

/// The fault-independent construction of a [`World`]: topology, link
/// latencies, node roles, and the funding-seeded chain and workload.
///
/// None of these inputs read the scenario's `faults` or `name`, so a
/// sweep that varies only fault intensity (like the robustness
/// experiment) can build this once and [`fork`](WorldCheckpoint::fork)
/// a fresh world per level instead of replaying topology sampling and
/// chain seeding five times. Forked worlds are bit-identical to ones
/// built directly with [`World::new`]: the topology RNG stream is a
/// deterministic fork of the seed, and the per-run streams
/// (transactions, mining, faults) are re-forked from the same root in
/// `fork`, never shared.
pub struct WorldCheckpoint {
    seed: u64,
    network: Network,
    chain: Chain,
    workload: Workload,
    hub_of_pool: Vec<NodeId>,
    observer: NodeId,
    observer_count: usize,
    relay_count: usize,
    stakeholders: Vec<NodeId>,
}

impl WorldCheckpoint {
    /// Builds the shared construction for `base`.
    ///
    /// # Panics
    /// Panics when the scenario fails validation.
    pub fn new(base: &Scenario) -> WorldCheckpoint {
        base.validate().unwrap_or_else(|e| panic!("invalid scenario: {e}"));
        let root = SimRng::seed_from_u64(base.seed);
        let mut rng_topo = root.fork("topology");

        // --- Node layout: relays | observer fleet | hubs ------------------
        // The primary observer sits at `relay_count`; fleet observer `j`
        // at `relay_count + j`; hubs after the whole fleet. A one-node
        // fleet reproduces the pre-fleet layout exactly (same node count,
        // same degree vector, same topology-RNG draws).
        let scenario = base;
        let relay_count = scenario.relay_nodes.max(2);
        let observer: NodeId = relay_count;
        let observer_count = scenario.observers.len();
        let hubs_base = relay_count + observer_count;
        // Pools that accept low-fee transactions need their own hub (their
        // Mempool admits what others reject); the rest share hubs.
        let mut hub_policies: Vec<MempoolPolicy> = Vec::new();
        let mut hub_of_pool: Vec<NodeId> = vec![0; scenario.pools.len()];
        let shared_hub_count = scenario.miner_hubs;
        for _ in 0..shared_hub_count {
            hub_policies.push(MempoolPolicy::default());
        }
        let mut shared_rr = 0usize;
        for (i, p) in scenario.pools.iter().enumerate() {
            if p.accepts_low_fee {
                hub_policies.push(MempoolPolicy::accept_all());
                hub_of_pool[i] = hubs_base + hub_policies.len(); // filled below
            } else {
                hub_of_pool[i] = hubs_base + (shared_rr % shared_hub_count);
                shared_rr += 1;
            }
        }
        // Fix dedicated-hub ids now that counts are known: dedicated hubs
        // come after the shared ones.
        {
            let mut next_dedicated = hubs_base + shared_hub_count;
            for (i, p) in scenario.pools.iter().enumerate() {
                if p.accepts_low_fee {
                    hub_of_pool[i] = next_dedicated;
                    next_dedicated += 1;
                }
            }
        }
        let hub_count = hub_policies.len();
        let n = relay_count + observer_count + hub_count;
        let mut degrees = vec![8usize; n];
        for (j, o) in scenario.observers.iter().enumerate() {
            degrees[observer + j] = o.peers;
        }
        let topology = Topology::random(n, &degrees, &mut rng_topo);
        let latency = LatencyModel::sample(
            &topology,
            scenario.link_latency_median,
            scenario.link_latency_sigma,
            &mut rng_topo,
        );
        let mut roles = vec![NodeRole::Relay; n];
        for (j, o) in scenario.observers.iter().enumerate() {
            roles[observer + j] = NodeRole::Observer { policy: o.policy };
        }
        for (h, policy) in hub_policies.iter().enumerate() {
            roles[hubs_base + h] = NodeRole::MinerHub { pool: h, policy: *policy };
        }
        let network = Network::new(topology, latency, roles);

        // --- Funding-seeded chain and workload ----------------------------
        // Pool reward wallets are a pure function of the roster
        // (name × wallet count), so the funding plan needs no constructed
        // pools — forks rebuild those per run.
        let mut chain = Chain::new(scenario.params.clone());
        let mut workload = Workload::new(scenario.users);
        workload.set_consolidation(scenario.wallet_consolidation);
        let pool_wallets: Vec<Address> = scenario
            .pools
            .iter()
            .flat_map(|p| MiningPool::derive_wallets(&p.name, p.wallet_count))
            .collect();
        workload.seed_funding(&mut chain, 6, Amount::from_btc(1), &pool_wallets);

        let mut stakeholders: Vec<NodeId> = network.observers();
        stakeholders.extend(network.miner_hubs().iter().map(|(n, _)| *n));
        stakeholders.sort_unstable();
        stakeholders.dedup();

        WorldCheckpoint {
            seed: scenario.seed,
            network,
            chain,
            workload,
            hub_of_pool,
            observer,
            observer_count,
            relay_count,
            stakeholders,
        }
    }

    /// Builds a runnable [`World`] for `scenario` on top of this shared
    /// construction. Only inputs the checkpoint never baked in may vary:
    /// the fault plan, the scenario name, the run duration, and the
    /// traffic knobs drawn from the per-run RNG streams.
    ///
    /// # Panics
    /// Panics when the scenario fails validation or disagrees with the
    /// checkpoint on seed, relay-node count, or pool-roster size — the
    /// baked topology and funding would silently misrepresent it.
    pub fn fork(&self, scenario: Scenario) -> World {
        scenario.validate().unwrap_or_else(|e| panic!("invalid scenario: {e}"));
        assert_eq!(scenario.seed, self.seed, "checkpoint seed mismatch");
        assert_eq!(scenario.relay_nodes.max(2), self.relay_count, "checkpoint relay-node mismatch");
        assert_eq!(scenario.pools.len(), self.hub_of_pool.len(), "checkpoint pool-roster mismatch");
        assert_eq!(
            scenario.observers.len(),
            self.observer_count,
            "checkpoint observer-fleet mismatch"
        );
        let root = SimRng::seed_from_u64(scenario.seed);
        let rng_tx = root.fork("transactions");
        let rng_arrival = rng_tx.fork("arrivals");
        let rng_mine = root.fork("mining");
        let rng_fault = root.fork("faults");
        let downtime_ms = scenario.faults.observer.downtime_windows_ms(scenario.duration * 1_000);

        // --- Pools, policies, services ------------------------------------
        let scam_address = Address::from_label(&format!("scam:{}", scenario.name));
        let mut services: Vec<Option<Arc<Mutex<AccelerationService>>>> =
            vec![None; scenario.pools.len()];
        let mut providers = Vec::new();
        let mut pools = Vec::with_capacity(scenario.pools.len());
        for (i, cfg) in scenario.pools.iter().enumerate() {
            let mut parts: Vec<Box<dyn MinerPolicy>> = Vec::new();
            for b in &cfg.behaviors {
                match b {
                    PoolBehavior::SelfInterest => {
                        parts.push(Box::new(AddressAccelerationPolicy::new(
                            format!("{}:self", cfg.name),
                            MiningPool::derive_wallets(&cfg.name, cfg.wallet_count),
                        )));
                    }
                    PoolBehavior::Collude { partners } => {
                        let mut watched = Vec::new();
                        for partner in partners {
                            let pc = scenario
                                .pools
                                .iter()
                                .find(|p| &p.name == partner)
                                .expect("validated");
                            watched.extend(MiningPool::derive_wallets(&pc.name, pc.wallet_count));
                        }
                        parts.push(Box::new(AddressAccelerationPolicy::new(
                            format!("{}:collude", cfg.name),
                            watched,
                        )));
                    }
                    PoolBehavior::DarkFee { premium } => {
                        let svc = Arc::new(Mutex::new(
                            AccelerationService::new(cfg.name.clone()).with_premium(*premium),
                        ));
                        services[i] = Some(Arc::clone(&svc));
                        providers.push(i);
                        parts.push(Box::new(DarkFeePolicy::new(svc)));
                    }
                    PoolBehavior::CensorScam { exclude } => {
                        let policy = if *exclude {
                            CensorPolicy::excluding([scam_address])
                        } else {
                            CensorPolicy::decelerating([scam_address])
                        };
                        parts.push(Box::new(policy));
                    }
                }
            }
            let mut pool = MiningPool::new(cfg.name.clone(), cfg.hash_rate, cfg.wallet_count);
            if !parts.is_empty() {
                pool = pool.with_policy(Box::new(CompositePolicy::new(cfg.name.clone(), parts)));
            }
            pools.push(pool);
        }
        let pool_picker =
            WeightedIndex::new(&scenario.pools.iter().map(|p| p.hash_rate).collect::<Vec<_>>());

        let mut truth = GroundTruth::default();
        if scenario.scam.is_some() {
            truth.set_scam_address(scam_address);
        }

        let observer_count = self.observer_count;
        World {
            estimator: FeeEstimator::new(12),
            scenario,
            rng_tx,
            rng_mine,
            chain: self.chain.clone(),
            network: self.network.clone(),
            pools,
            hub_of_pool: self.hub_of_pool.clone(),
            observer: self.observer,
            observer_count,
            relay_count: self.relay_count,
            workload: self.workload.clone(),
            truth,
            observer_streams: vec![Vec::new(); observer_count],
            services,
            block_miners: Vec::new(),
            providers,
            delivery_state: FastMap::default(),
            pool_picker,
            stakeholders: self.stakeholders.clone(),
            scam_address,
            snapshot_counter: 0,
            rng_arrival,
            pregen: VecDeque::new(),
            user_tx_drawn: 0,
            self_tx_count: 0,
            pool: Pool::auto(),
            rng_fault,
            downtime_ms,
            orphaned_blocks: 0,
            record_truth: true,
            profile: SimProfile {
                observer_snapshots: vec![0; observer_count],
                observer_degraded: vec![0; observer_count],
                ..SimProfile::default()
            },
        }
    }
}

impl World {
    /// Builds the world for a scenario.
    ///
    /// # Panics
    /// Panics when the scenario fails validation.
    pub fn new(scenario: Scenario) -> World {
        WorldCheckpoint::new(&scenario).fork(scenario)
    }

    /// Overrides the fork-join worker count for pre-generation batches.
    ///
    /// Output bytes are identical at any width (the byte-identity property
    /// tests run the same scenario at 1 and N workers and compare
    /// everything); this exists so those tests — and the CI dual-run gate
    /// — can pin widths regardless of the host or `CN_WORKERS`.
    pub fn with_workers(mut self, workers: usize) -> World {
        self.pool = Pool::with_workers(workers);
        self
    }

    /// Runs the scenario to completion and returns its artifacts.
    pub fn run(mut self) -> SimOutput {
        self.run_loop(&mut NoTap);

        // The primary stream is exposed twice: as the legacy `snapshots`
        // field and as `observer_streams[0]`. Rows are Arc-shared, so the
        // duplicate costs reference counts, not row copies.
        let snapshots = self.observer_streams[0].clone();
        SimOutput {
            pool_names: self.pools.iter().map(|p| p.name().to_string()).collect(),
            scenario: self.scenario,
            chain: self.chain,
            snapshots,
            observer_streams: self.observer_streams,
            truth: self.truth,
            block_miners: self.block_miners,
            services: self.services,
            orphaned_blocks: self.orphaned_blocks,
            profile: self.profile,
        }
    }

    /// Runs the scenario to completion, streaming the canonical
    /// block/snapshot event stream to `sink` and *dropping* artifacts from
    /// memory as they are emitted, so peak RSS is O(epoch) instead of
    /// O(run length).
    ///
    /// The emitted stream is byte-compatible with feeding the equivalent
    /// monolithic [`World::run`] output through the batch interleaver
    /// (time-sorted, block-before-snapshot on same-second ties): the event
    /// loop itself is shared, only the bookkeeping differs. Ground-truth
    /// labels are not recorded (they are write-only during a run), chain
    /// history is pruned behind a small working horizon, and fleet
    /// observer streams are cleared every tick.
    pub fn run_streamed(mut self, sink: &mut dyn EventSink) -> StreamedSummary {
        self.record_truth = false;
        sink.on_start(self.chain.seeded_transactions());
        let mut tap = StreamTap {
            sink,
            pending_blocks: VecDeque::new(),
            pending_snapshots: VecDeque::new(),
            snapshots_emitted: 0,
        };
        self.run_loop(&mut tap);
        tap.drain_older_than(Timestamp::MAX);
        let snapshots_emitted = tap.snapshots_emitted;
        StreamedSummary {
            blocks: self.chain.height(),
            snapshots: snapshots_emitted,
            orphaned_blocks: self.orphaned_blocks,
            pool_names: self.pools.iter().map(|p| p.name().to_string()).collect(),
            profile: self.profile,
        }
    }

    /// The shared event loop; `tap` observes artifact production (the
    /// chunked path streams-and-drops, the monolithic path does nothing).
    fn run_loop(&mut self, tap: &mut dyn RunTap) {
        let horizon_ms: SimMillis = self.scenario.duration * 1_000;
        let mut queue: BucketQueue<Ev> = BucketQueue::new();

        // Prime the schedule.
        if let Some(first) = self.next_user_arrival(0) {
            if first < horizon_ms {
                queue.schedule(first, Ev::IssueUserTx);
            }
        }
        if self.scenario.self_interest_rate > 0.0 {
            for i in 0..self.pools.len() {
                let gap = self.self_tx_gap();
                if gap < horizon_ms {
                    queue.schedule(gap, Ev::IssueSelfTx(i));
                }
            }
        }
        let spacing = self.scenario.params.target_spacing_secs;
        let first_block =
            (Exponential::with_mean(spacing as f64 * 1_000.0).sample(&mut self.rng_mine)) as u64;
        queue.schedule(first_block.min(horizon_ms.saturating_sub(1)), Ev::MineBlock);
        queue.schedule(self.scenario.snapshot_interval * 1_000, Ev::Snapshot);

        let run_started = Instant::now();
        while let Some((now_ms, ev)) = queue.pop() {
            if now_ms >= horizon_ms {
                break;
            }
            self.profile.events_popped += 1;
            match ev {
                Ev::IssueUserTx => {
                    self.profile.user_txs += 1;
                    self.issue_user_tx(now_ms, &mut queue);
                    if let Some(next) = self.next_user_arrival(now_ms) {
                        if next < horizon_ms {
                            queue.schedule(next, Ev::IssueUserTx);
                        }
                    }
                }
                Ev::IssueSelfTx(pool) => {
                    self.profile.self_txs += 1;
                    self.issue_self_tx(pool, now_ms, &mut queue);
                    let next = now_ms + self.self_tx_gap();
                    if next < horizon_ms {
                        queue.schedule(next, Ev::IssueSelfTx(pool));
                    }
                }
                Ev::Deliver { node, payload, counted } => {
                    let t = Instant::now();
                    // Drain the run of deliveries sharing this timestamp.
                    // The drain stops at the first non-Deliver event so the
                    // queue's (due, seq) pop order is preserved exactly —
                    // a same-timestamp MineBlock scheduled between two
                    // deliveries still fires between them.
                    let mut batch = vec![(node, payload, counted)];
                    loop {
                        match queue.peek() {
                            Some((due, Ev::Deliver { .. })) if due == now_ms => {}
                            _ => break,
                        }
                        let Some((_, Ev::Deliver { node, payload, counted })) = queue.pop()
                        else {
                            unreachable!("peek showed a same-timestamp Deliver");
                        };
                        self.profile.events_popped += 1;
                        batch.push((node, payload, counted));
                    }
                    self.profile.deliveries += batch.len() as u64;
                    self.deliver_batch(batch, now_ms);
                    SimProfile::credit(&mut self.profile.admission, t.elapsed());
                }
                Ev::MineBlock => {
                    if self.mine_block(now_ms) {
                        tap.block_connected(self);
                    }
                    let gap = Exponential::with_mean(spacing as f64 * 1_000.0)
                        .sample(&mut self.rng_mine) as u64;
                    let next = now_ms + gap.max(1_000);
                    if next < horizon_ms {
                        queue.schedule(next, Ev::MineBlock);
                    }
                }
                Ev::Snapshot => {
                    let t = Instant::now();
                    self.profile.snapshot_ticks += 1;
                    let now_secs = now_ms / 1_000;
                    // The primary observer inside an outage window records
                    // nothing: the window is simply missing from the
                    // stream. The detail-stride counter still advances so
                    // the cadence realigns once the daemon is back.
                    let down =
                        self.downtime_ms.iter().any(|&(s, e)| now_ms >= s && now_ms < e);
                    let detailed =
                        self.snapshot_counter.is_multiple_of(self.scenario.snapshot_detail_every);
                    self.snapshot_counter += 1;
                    if !down {
                        // Enforce the primary observer's maxmempool before
                        // recording.
                        if let Some(cap) = self.scenario.observers[0].max_mempool_vsize {
                            if let Some(pool) = self.network.mempool_mut(self.observer) {
                                pool.limit_size(cap);
                            }
                        }
                        if let Some(pool) = self.network.mempool_mut(self.observer) {
                            let mut snap = if detailed {
                                pool.snapshot(now_secs)
                            } else {
                                pool.snapshot_light(now_secs)
                            };
                            let obs_faults = self.scenario.faults.observer;
                            if detailed
                                && obs_faults.truncate_prob > 0.0
                                && self.rng_fault.next_bool(obs_faults.truncate_prob)
                            {
                                snap = snap.truncate_detail(obs_faults.truncate_keep_frac);
                            }
                            // An eclipsed observer keeps recording — its
                            // daemon is fine — but the view is frozen, so
                            // the snapshot carries a degraded stamp that
                            // coverage accounting discounts. Deterministic:
                            // no RNG draw, so the empty adversary plan
                            // stays bit-inert.
                            if self.scenario.adversaries.eclipsed(0, now_ms) {
                                snap = snap.mark_degraded();
                                self.profile.observer_degraded[0] += 1;
                            }
                            self.profile.observer_snapshots[0] += 1;
                            self.observer_streams[0].push(snap);
                        }
                    }
                    SimProfile::credit(&mut self.profile.snapshot, t.elapsed());
                    // The rest of the fleet: same cadence and detail
                    // stride, per-observer caps, no legacy observer
                    // faults (those model the primary daemon's outages).
                    if self.observer_count > 1 {
                        let t_fleet = Instant::now();
                        for j in 1..self.observer_count {
                            let node = self.observer + j;
                            if let Some(cap) = self.scenario.observers[j].max_mempool_vsize {
                                if let Some(pool) = self.network.mempool_mut(node) {
                                    pool.limit_size(cap);
                                }
                            }
                            if let Some(pool) = self.network.mempool_mut(node) {
                                let mut snap = if detailed {
                                    pool.snapshot(now_secs)
                                } else {
                                    pool.snapshot_light(now_secs)
                                };
                                if self.scenario.adversaries.eclipsed(j, now_ms) {
                                    snap = snap.mark_degraded();
                                    self.profile.observer_degraded[j] += 1;
                                }
                                self.profile.observer_snapshots[j] += 1;
                                self.observer_streams[j].push(snap);
                            }
                        }
                        SimProfile::credit(&mut self.profile.fleet, t_fleet.elapsed());
                    }
                    tap.snapshot_tick(self);
                    let next = now_ms + self.scenario.snapshot_interval * 1_000;
                    if next < horizon_ms {
                        queue.schedule(next, Ev::Snapshot);
                    }
                }
            }
        }
        self.profile.wall = run_started.elapsed().as_secs_f64();
        for pool in &self.pools {
            let stats = pool.assembly_stats();
            self.profile.assembly_incremental_hits += stats.incremental_hits;
            self.profile.assembly_full_rebuilds += stats.full_rebuilds;
            self.profile.rebuilds_with_accelerate += stats.rebuilds_with_accelerate;
            self.profile.rebuilds_with_decelerate += stats.rebuilds_with_decelerate;
            self.profile.rebuilds_with_exclude += stats.rebuilds_with_exclude;
        }
    }

    /// Next user-transaction arrival after `now_ms`, by Poisson thinning
    /// against the congestion profile.
    fn next_user_arrival(&mut self, now_ms: SimMillis) -> Option<SimMillis> {
        let max_rate = self.scenario.congestion.max_rate();
        let gap_dist = Exponential::new(max_rate / 1_000.0); // events per ms
        let mut t = now_ms as f64;
        for _ in 0..100_000 {
            t += gap_dist.sample(&mut self.rng_arrival).max(1.0);
            let rate = self.scenario.congestion.rate_at((t / 1_000.0) as Timestamp);
            if self.rng_arrival.next_f64() < rate / max_rate {
                return Some(t as SimMillis);
            }
        }
        None
    }

    fn self_tx_gap(&mut self) -> SimMillis {
        let mean_ms = 1_000.0 / self.scenario.self_interest_rate;
        (Exponential::with_mean(mean_ms).sample(&mut self.rng_mine) as SimMillis).max(1)
    }

    /// The observer's current top fee rate (the acceleration quote anchor).
    fn top_fee_rate(&self) -> FeeRate {
        self.network
            .mempool(self.observer)
            .and_then(|m| m.top_fee_rate())
            .unwrap_or(FeeRate::MIN_RELAY)
    }

    /// A user's public fee rate from wallet-estimator behaviour, applying
    /// pre-sampled draws (urgency-quantile index, noise multiplier,
    /// willingness cap) against live state.
    ///
    /// Bids combine the block-history estimator with the *live* backlog
    /// (real wallets use mempool-based estimation too, which is what makes
    /// Figure 4c's fee-vs-congestion monotonicity hold at issue time), and
    /// the estimator's positive feedback loop (bids quote recent blocks,
    /// which quote bids) is broken by a heavy-tailed per-transaction
    /// willingness-to-pay cap. The random parts live in [`TxDraws`]; the
    /// state reads happen here, in event order, so pre-generation cannot
    /// perturb them.
    fn user_fee_rate(&self, q_idx: usize, noise: f64, wtp: f64) -> FeeRate {
        // Users differ in urgency: quantile of recent block fee rates.
        let q = URGENCY_QUANTILES[q_idx];
        let suggested = self.estimator.suggest(q).to_sat_per_kvb() as f64;
        // Live-backlog pressure: how many block-capacities are pending
        // right now at the observer.
        let cap = self.scenario.params.max_block_vsize().max(1) as f64;
        let backlog = self
            .network
            .mempool(self.observer)
            .map(|m| m.total_vsize() as f64)
            .unwrap_or(0.0);
        let pressure = (backlog / cap).min(30.0);
        // Calm pools discount the history slightly; deep congestion scales
        // bids up logarithmically.
        let pressure_factor = 0.8 + 0.4 * (1.0 + pressure).ln();
        // Willingness cap: median 120 sat/vB, long right tail — matching
        // the paper's observation that fees span 1e-6 to beyond 1 BTC/KB
        // but cluster within two orders of magnitude of the minimum.
        let floor = FeeRate::MIN_RELAY.to_sat_per_kvb() as f64;
        let rate = (suggested * pressure_factor * noise).min(wtp).max(floor);
        FeeRate::from_sat_per_kvb(rate as u64)
    }

    /// Samples the full draw record for user transaction `index` from its
    /// own RNG fork. Pure: reads only the fork base and run constants, so
    /// any worker can produce any index.
    fn draw_user_tx(
        base: &SimRng,
        workload: &Workload,
        providers: u64,
        relays: u64,
        index: u64,
    ) -> TxDraws {
        let mut r = base.fork_indexed("user-tx", index);
        TxDraws {
            scam_u: r.next_f64(),
            accel_u: r.next_f64(),
            zero_fee_u: r.next_f64(),
            q_idx: r.next_below(URGENCY_QUANTILES.len() as u64) as usize,
            noise: LogNormal::new(0.0, 0.35).sample(&mut r),
            wtp: LogNormal::with_median(120_000.0, 1.2).sample(&mut r),
            allow_pending_u: r.next_f64(),
            payment: workload.draw_payment(&mut r),
            provider: if providers > 0 { r.next_below(providers) as u32 } else { 0 },
            origin: r.next_below(relays) as u32,
        }
    }

    /// Refills the pre-generation queue with the next [`PREGEN_BATCH`]
    /// user-transaction draw records, sharded across the fork-join pool.
    fn refill_draws(&mut self) {
        let started = Instant::now();
        let start = self.user_tx_drawn;
        let (batch, shards) = {
            let base = &self.rng_tx;
            let workload = &self.workload;
            let providers = self.providers.len() as u64;
            let relays = self.relay_count as u64;
            self.pool.build_timed(PREGEN_BATCH, |i| {
                Self::draw_user_tx(base, workload, providers, relays, start + i as u64)
            })
        };
        self.user_tx_drawn += PREGEN_BATCH as u64;
        self.pregen.extend(batch);
        self.profile.note_pregen(&shards);
        SimProfile::credit(&mut self.profile.pregen, started.elapsed());
    }

    fn issue_user_tx(&mut self, now_ms: SimMillis, queue: &mut BucketQueue<Ev>) {
        // Top up the pre-generated draw queue before the issue timer
        // starts, so batch production is attributed to `pregen`, not
        // `issue`.
        if self.pregen.is_empty() {
            self.refill_draws();
        }
        let issue_started = Instant::now();
        let now_secs = now_ms / 1_000;
        let draws = self.pregen.pop_front().expect("refilled above");
        // Scam donation? (The flip's uniform was pre-drawn; the window
        // check reads the clock, which only exists at application time.)
        let is_scam = match &self.scenario.scam {
            Some(cfg) => {
                now_secs >= cfg.window_start
                    && now_secs < cfg.window_end
                    && draws.scam_u < cfg.donation_prob
            }
            None => false,
        };
        // Dark-fee acceleration demand?
        let wants_acceleration = !is_scam
            && !self.providers.is_empty()
            && draws.accel_u < self.scenario.acceleration_demand;
        // Zero-fee deviant?
        let zero_fee =
            !is_scam && !wants_acceleration && draws.zero_fee_u < self.scenario.zero_fee_prob;

        let fee_rate = if zero_fee {
            FeeRate::ZERO
        } else if wants_acceleration {
            // Accelerating users deliberately underbid publicly (§5.4.1):
            // the dark fee does the work.
            FeeRate::MIN_RELAY
        } else {
            self.user_fee_rate(draws.q_idx, draws.noise, draws.wtp)
        };

        let target = if is_scam {
            PaymentTarget::To(self.scam_address)
        } else {
            PaymentTarget::RandomUser
        };
        let allow_pending = draws.allow_pending_u < self.scenario.cpfp_prob;
        let Some(built) =
            self.workload.build_payment(&draws.payment, None, target, fee_rate, allow_pending)
        else {
            SimProfile::credit(&mut self.profile.issue, issue_started.elapsed());
            return; // no spendable output right now; skip this arrival
        };
        let kind = if is_scam { TxKind::Scam } else { TxKind::User };
        if self.record_truth {
            self.truth.record_issue(built.tx.txid(), kind, now_secs, built.fee);
        }

        if wants_acceleration {
            let provider = self.providers[draws.provider as usize];
            let svc = self.services[provider].as_ref().expect("provider has service");
            let top = self.top_fee_rate();
            let mut svc = svc.lock();
            let quote = svc.quote(built.tx.vsize(), built.fee, top);
            svc.accelerate(built.tx.txid(), quote);
            drop(svc);
            if self.record_truth {
                self.truth.record_acceleration(
                    built.tx.txid(),
                    self.pools[provider].name().to_string(),
                    quote,
                );
            }
        }

        SimProfile::credit(&mut self.profile.issue, issue_started.elapsed());
        self.broadcast(built, now_ms, queue, false, draws.origin as usize);
    }

    fn issue_self_tx(&mut self, pool: usize, now_ms: SimMillis, queue: &mut BucketQueue<Ev>) {
        let issue_started = Instant::now();
        let now_secs = now_ms / 1_000;
        // Self-transfers are orders of magnitude rarer than user traffic,
        // so their draws come from an inline indexed fork (same
        // determinism contract as pre-generation, no batching machinery).
        let mut r = self.rng_tx.fork_indexed("self-tx", self.self_tx_count);
        self.self_tx_count += 1;
        // Indexing after the draw keeps the wallet slice borrow disjoint
        // from the RNG borrow — no per-issue wallet-list clone.
        let wallet_count = self.pools[pool].wallets().len();
        let pick = r.next_below(wallet_count as u64) as usize;
        let from = self.pools[pool].wallets()[pick];
        let consolidates = r.next_bool(0.85);
        let q_idx = r.next_below(URGENCY_QUANTILES.len() as u64) as usize;
        let noise = LogNormal::new(0.0, 0.35).sample(&mut r);
        let wtp = LogNormal::with_median(120_000.0, 1.2).sample(&mut r);
        let payment = self.workload.draw_payment(&mut r);
        let origin = r.next_below(self.relay_count as u64) as usize;
        // Pools mostly consolidate their own funds at rock-bottom fee
        // rates (they are not in a hurry — unless, of course, they
        // cheat); under congestion those transfers linger, which is
        // exactly the setting where self-acceleration becomes observable
        // (§5.2). A minority of pool transfers (payouts, exchanges) pay
        // market rates and confirm normally regardless of who mines.
        let fee_rate = if consolidates {
            // Exactly the relay floor: consolidations queue behind every
            // bidder and clear only on deep drains — or in the pool's own
            // blocks.
            FeeRate::MIN_RELAY
        } else {
            self.user_fee_rate(q_idx, noise, wtp)
        };
        let Some(built) = self.workload.build_payment(
            &payment,
            Some(from),
            PaymentTarget::RandomUser,
            fee_rate,
            false,
        ) else {
            SimProfile::credit(&mut self.profile.issue, issue_started.elapsed());
            return; // pool wallet has no confirmed funds yet
        };
        if self.record_truth {
            self.truth.record_issue(
                built.tx.txid(),
                TxKind::SelfInterest { pool: self.pools[pool].name().to_string() },
                now_secs,
                built.fee,
            );
        }
        SimProfile::credit(&mut self.profile.issue, issue_started.elapsed());
        self.broadcast(built, now_ms, queue, true, origin);
    }

    /// Schedules per-stakeholder deliveries for a freshly issued tx,
    /// applying link faults (loss, spikes, reorder jitter, duplicates)
    /// and adversarial observation attacks (withholding, diffusion
    /// stalls, eclipses) when the scenario enables them. `miner_origin`
    /// marks transfers issued from pool wallets — the traffic the
    /// `MinerOrigin` withhold predicate targets. `origin` is the relay
    /// node the transaction enters from (users are spread over the edge);
    /// it is part of the issuer's pre-drawn record.
    fn broadcast(
        &mut self,
        built: BuiltTx,
        now_ms: SimMillis,
        queue: &mut BucketQueue<Ev>,
        miner_origin: bool,
        origin: usize,
    ) {
        let relay_started = Instant::now();
        let arrivals = self.network.propagation_from(origin);
        let link = self.scenario.faults.link;
        let adv = &self.scenario.adversaries;
        let adv_enabled = adv.enabled();
        // The withhold predicates key on fee rate; computed once per
        // broadcast, and only when an adversary could consult it.
        let fee_rate_kvb = if adv_enabled {
            FeeRate::from_fee_and_vsize(built.fee, built.tx.vsize()).to_sat_per_kvb()
        } else {
            0
        };
        // One shared payload for the whole fan-out; each delivery event
        // (duplicates included) holds a handle, not a transaction clone.
        let payload = Arc::new(RelayPayload::new(built.tx, built.fee));
        let mut expected = 0usize;
        let mut lost = 0usize;
        for &node in &self.stakeholders {
            // Observer latency tiers scale the node's first-arrival delay;
            // factor 1.0 multiplies exactly, so default fleets keep the
            // pre-fleet arrival schedule bit-identical.
            let obs_idx = (node >= self.observer && node < self.observer + self.observer_count)
                .then(|| node - self.observer);
            let delay_ms = match obs_idx {
                Some(j) => {
                    (arrivals[node] * self.scenario.observers[j].latency_factor * 1_000.0).round()
                        as SimMillis
                }
                None => (arrivals[node] * 1_000.0).round() as SimMillis,
            };
            let mut at = now_ms + delay_ms.max(1);
            let mut dup_trail = None;
            if link.enabled() {
                let Some(extra) = link.sample_delivery(&mut self.rng_fault) else {
                    lost += 1; // this node never hears of the tx
                    continue;
                };
                at += extra;
                dup_trail = link.sample_duplicate(&mut self.rng_fault);
            }
            if adv_enabled {
                if let Some(j) = obs_idx {
                    // Selectively-withholding peers: matching deliveries
                    // toward this observer vanish with probability
                    // `control`, independently per observer — which is
                    // exactly what a fleet exploits to recover coverage.
                    // Unlike link loss, an adversary-suppressed observer
                    // delivery never locks CPFP: the tx still reaches
                    // every miner, so child-spending stays consensus-
                    // valid — only *observation* is damaged. (The drop
                    // still shrinks `expected`, so users who pace CPFP on
                    // full propagation may unlock marginally earlier.)
                    if adv.withholds_delivery(j, miner_origin, fee_rate_kvb, &mut self.rng_fault)
                    {
                        continue;
                    }
                    // Spy-resistant diffusion: the first hop toward an
                    // observer stalls; miners hear at normal speed.
                    at += adv.diffusion_extra_ms(&mut self.rng_fault);
                    // Eclipse: an arrival inside the window never lands
                    // (deterministic, no draw). Half-open boundaries are
                    // covered by the eclipse-window tests.
                    if adv.eclipsed(j, at) {
                        continue;
                    }
                }
            }
            expected += 1;
            queue.schedule(at, Ev::Deliver { node, payload: Arc::clone(&payload), counted: true });
            if let Some(trail) = dup_trail {
                queue.schedule(
                    at + trail,
                    Ev::Deliver { node, payload: Arc::clone(&payload), counted: false },
                );
            }
        }
        // A tx whose every delivery was lost has no pending deliveries to
        // track; inserting an entry would leak it forever. A partially
        // lost tx starts with `all_ok = false`: some stakeholder (possibly
        // a miner) will never hold it, so its outputs must stay locked — a
        // CPFP child spending them could reach a miner that cannot package
        // the parent, and the resulting block would be consensus-invalid.
        // (`lost` counts link-fault losses only; see the adversary note
        // above.)
        if expected > 0 {
            self.delivery_state.insert(payload.txid, (expected, lost == 0));
        }
        // With link faults or adversaries on, this path is dominated by
        // the per-delivery draws — attribute it to the faults subsystem.
        let slot = if link.enabled() || adv_enabled {
            &mut self.profile.faults
        } else {
            &mut self.profile.relay
        };
        SimProfile::credit(slot, relay_started.elapsed());
    }

    /// Admits one drained run of same-timestamp deliveries.
    ///
    /// The precheck memo on each payload is populated (or counted as a
    /// hit) serially first, so the hit counters are width-independent.
    /// Singleton runs — the overwhelming majority — take the plain serial
    /// path. Multi-event runs group by receiving node (per-node pop order
    /// preserved) and fan the disjoint node groups across the fork-join
    /// pool: per-node mempools are independent, the chain is read-only
    /// during the batch, and no RNG is consulted, so final state is
    /// byte-identical to the serial interleaving at any worker count.
    /// Delivery bookkeeping then runs serially in exact pop order.
    fn deliver_batch(&mut self, batch: Vec<(NodeId, Arc<RelayPayload>, bool)>, now_ms: SimMillis) {
        for (_, payload, _) in &batch {
            if payload.precheck_cached() {
                self.profile.admission_precheck_hits += 1;
            } else {
                let _ = payload.precheck();
            }
        }
        if batch.len() == 1 {
            let (node, payload, counted) = batch.into_iter().next().expect("len checked");
            self.deliver(node, &payload, now_ms, counted);
            return;
        }
        self.profile.delivery_batches += 1;
        self.profile.batched_deliveries += batch.len() as u64;
        self.profile.max_delivery_batch = self.profile.max_delivery_batch.max(batch.len() as u64);
        let now_secs = now_ms / 1_000;

        // Group by receiving node, preserving per-node pop order. Batches
        // are a handful of events, so a linear group scan beats a map.
        struct NodeGroup<'a> {
            node: NodeId,
            mempool: Option<&'a mut Mempool>,
            idxs: Vec<usize>,
            accepted: Vec<bool>,
        }
        let World { network, chain, pool, delivery_state, workload, .. } = &mut *self;
        // Confirmed-in-flight probe, width-independent, computed serially
        // per item: counted deliveries read it off the bookkeeping map
        // (absent entry ⟺ confirmed and reclaimed — see `deliver`);
        // fault-injected duplicates still consult the chain directly.
        let confirmed: Vec<bool> = batch
            .iter()
            .map(|(_, payload, counted)| {
                if *counted {
                    !delivery_state.contains_key(&payload.txid)
                } else {
                    chain.contains_tx(&payload.txid)
                }
            })
            .collect();
        let mut views: FastMap<NodeId, &mut Mempool> = network.mempools_iter_mut().collect();
        let mut groups: Vec<NodeGroup> = Vec::new();
        for (i, (node, _, _)) in batch.iter().enumerate() {
            match groups.iter_mut().find(|g| g.node == *node) {
                Some(g) => g.idxs.push(i),
                None => groups.push(NodeGroup {
                    node: *node,
                    mempool: views.remove(node),
                    idxs: vec![i],
                    accepted: Vec::new(),
                }),
            }
        }
        let batch_ref = &batch;
        let confirmed_ref = &confirmed;
        pool.for_each_mut(&mut groups, |g| {
            g.accepted = g
                .idxs
                .iter()
                .map(|&i| {
                    let (_, payload, _) = &batch_ref[i];
                    confirmed_ref[i]
                        || g.mempool.as_mut().is_some_and(|m| {
                            m.add_prechecked(
                                Arc::clone(&payload.tx),
                                payload.fee,
                                now_secs,
                                payload.precheck(),
                            )
                            .is_ok()
                        })
                })
                .collect();
        });

        // Scatter per-group verdicts back into pop order, then run the
        // delivery bookkeeping serially in exactly that order.
        let mut accepted = vec![false; batch.len()];
        for g in &groups {
            for (k, &i) in g.idxs.iter().enumerate() {
                accepted[i] = g.accepted[k];
            }
        }
        for (i, (_, payload, counted)) in batch.iter().enumerate() {
            if !*counted {
                continue;
            }
            if let Some((remaining, all_ok)) = delivery_state.get_mut(&payload.txid) {
                *all_ok &= accepted[i];
                *remaining -= 1;
                if *remaining == 0 {
                    let ok = *all_ok;
                    delivery_state.remove(&payload.txid);
                    if ok {
                        workload.mark_broadcast_ok(&payload.txid);
                    }
                }
            }
        }
    }

    fn deliver(&mut self, node: NodeId, payload: &RelayPayload, now_ms: SimMillis, counted: bool) {
        let txid = payload.txid;
        let now_secs = now_ms / 1_000;
        if !counted {
            // Fault-injected duplicate: invisible to the bookkeeping, but
            // it still hits the Mempool unless the tx confirmed while in
            // flight (real nodes drop such stragglers on admission).
            if !self.chain.contains_tx(&txid) {
                if let Some(pool) = self.network.mempool_mut(node) {
                    let _ = pool.add_prechecked(
                        Arc::clone(&payload.tx),
                        payload.fee,
                        now_secs,
                        payload.precheck(),
                    );
                }
            }
            return;
        }
        // For a counted delivery, a missing bookkeeping entry means
        // exactly one thing: the tx confirmed while this delivery was in
        // flight (mine_block reclaims the entry of every confirmed tx,
        // and the entry cannot be exhausted early — each counted delivery
        // decrements it exactly once). Confirmed stragglers are dropped
        // as accepted, so this lookup answers the per-delivery chain
        // containment probe the old code paid on a much larger map.
        let World { network, delivery_state, workload, .. } = &mut *self;
        let Some((remaining, all_ok)) = delivery_state.get_mut(&txid) else {
            return;
        };
        let accepted = match network.mempool_mut(node) {
            Some(pool) => pool
                .add_prechecked(Arc::clone(&payload.tx), payload.fee, now_secs, payload.precheck())
                .is_ok(),
            None => false,
        };
        *all_ok &= accepted;
        *remaining -= 1;
        if *remaining == 0 {
            let ok = *all_ok;
            delivery_state.remove(&txid);
            if ok {
                workload.mark_broadcast_ok(&txid);
            }
        }
    }

    /// Mines one block; returns true when a block was actually connected
    /// (false for a stale-tip orphan discarded by fault injection).
    fn mine_block(&mut self, now_ms: SimMillis) -> bool {
        let t_assembly = Instant::now();
        let now_secs = now_ms / 1_000;
        let idx = self.pool_picker.sample(&mut self.rng_mine);
        // Stale-tip race (fault injection): the pool found a block but a
        // same-height competitor propagated first; the find is discarded
        // before connecting — mempools, chain, and the miner record are
        // untouched, exactly as a losing branch looks from the winner's
        // chain.
        let stale_prob = self.scenario.faults.stale_tip_prob;
        if stale_prob > 0.0 && self.rng_fault.next_bool(stale_prob) {
            self.orphaned_blocks += 1;
            SimProfile::credit(&mut self.profile.assembly, t_assembly.elapsed());
            return false;
        }
        let hub = self.hub_of_pool[idx];
        let height = self.chain.height();
        let prev = self.chain.tip_hash();
        // SPV/stale-template mining: occasionally a pool finds a block
        // before assembling a template and commits nothing.
        let mine_empty = self.rng_mine.next_bool(self.scenario.empty_block_prob);

        let World { network, chain, pools, .. } = self;
        let empty_mempool = cn_mempool::Mempool::new(cn_mempool::MempoolPolicy::default());
        let hub_mempool = if mine_empty {
            &empty_mempool
        } else {
            network.mempool(hub).expect("hub has a mempool")
        };
        let utxos = chain.utxos();
        let resolve = |op: &cn_chain::OutPoint| -> Option<Address> {
            utxos
                .get(op)
                .and_then(|o| o.address())
                .or_else(|| {
                    hub_mempool
                        .get(&op.txid)
                        .and_then(|e| e.tx().outputs().get(op.vout as usize))
                        .and_then(|o| o.address())
                })
        };
        let block = pools[idx].build_block(
            hub_mempool,
            &self.scenario.params,
            prev,
            height,
            now_secs,
            &resolve,
        );

        // Record fee rates for the estimator before views change.
        let mut rates = Vec::with_capacity(block.body().len());
        for tx in block.body() {
            if let Some(e) = hub_mempool.get(&tx.txid()) {
                rates.push(e.fee_rate());
            }
        }

        self.chain
            .connect(block.clone())
            .unwrap_or_else(|e| panic!("simulator built an invalid block: {e}"));
        self.estimator.record_rates(rates);
        self.workload.on_block_confirmed(&block);
        SimProfile::credit(&mut self.profile.assembly, t_assembly.elapsed());
        // The block tick proper: every stakeholder view evicts the
        // confirmed set and repairs its ancestor scores. Views are
        // independent, so they fan across the pool; timed as `eviction`
        // (schema ≤ 5 buried this inside `assembly`).
        let t_eviction = Instant::now();
        self.network.apply_block_parallel(&block, &self.pool);
        SimProfile::credit(&mut self.profile.eviction, t_eviction.elapsed());
        self.block_miners.push(idx);
        self.profile.blocks += 1;
        // Reclaim delivery bookkeeping for just-confirmed transactions.
        // Any still-in-flight delivery of these finds the tx on chain and
        // counts as accepted, and `mark_broadcast_ok` after confirmation
        // is a no-op — so dropping the entries changes nothing observable
        // while keeping the map from accumulating stragglers (txs whose
        // slowest deliveries would otherwise pin their entries, and, under
        // fault injection, txs that confirm despite lost deliveries and
        // would leak their entries permanently).
        for tx in block.body() {
            self.delivery_state.remove(&tx.txid());
        }
        true
    }
}

/// How many recent blocks the chunked run path keeps resident. Anything
/// older can no longer influence the simulation: `contains_tx` probes only
/// chase duplicate deliveries that trail their transaction's confirmation
/// by milliseconds, and block assembly reads nothing but the tip and the
/// UTXO set — a two-dozen-block horizon (hours of simulated time) is
/// orders of magnitude beyond any in-flight event.
const PRUNE_KEEP_BLOCKS: u64 = 24;

/// Hooks the shared event loop fires as artifacts are produced, so the
/// chunked path can stream-and-drop state without forking the loop.
trait RunTap {
    /// A block was connected (it is `world.chain.blocks().last()`).
    fn block_connected(&mut self, world: &mut World);
    /// A snapshot tick completed (primary and fleet observers recorded).
    fn snapshot_tick(&mut self, world: &mut World);
}

/// The monolithic path: artifacts accumulate in the world, nothing to do.
struct NoTap;

impl RunTap for NoTap {
    fn block_connected(&mut self, _world: &mut World) {}
    fn snapshot_tick(&mut self, _world: &mut World) {}
}

/// The chunked path: buffers the current second's events, emits everything
/// strictly older to the sink in canonical merge order, and prunes the
/// world's accumulated state behind the emission frontier.
///
/// Ordering argument: the simulation clock is monotone in milliseconds and
/// event timestamps are full seconds, so once an event at second `t` is
/// produced, no future block or snapshot can be stamped earlier than `t`.
/// Draining buffered events with time < `t` (blocks before snapshots on
/// equal stamps, matching the batch interleaver's tie-break) therefore
/// emits a stable prefix of the canonical stream.
struct StreamTap<'a> {
    sink: &'a mut dyn EventSink,
    pending_blocks: VecDeque<cn_chain::Block>,
    pending_snapshots: VecDeque<MempoolSnapshot>,
    snapshots_emitted: u64,
}

impl StreamTap<'_> {
    fn drain_older_than(&mut self, cutoff: Timestamp) {
        loop {
            let take_block = match (self.pending_blocks.front(), self.pending_snapshots.front()) {
                (Some(b), Some(s)) => b.header.time <= s.time,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return,
            };
            if take_block {
                let Some(b) = self.pending_blocks.front() else { unreachable!() };
                if b.header.time >= cutoff {
                    return;
                }
                let b = self.pending_blocks.pop_front().expect("front exists");
                self.sink.on_block(&b);
            } else {
                let Some(s) = self.pending_snapshots.front() else { unreachable!() };
                if s.time >= cutoff {
                    return;
                }
                let s = self.pending_snapshots.pop_front().expect("front exists");
                self.sink.on_snapshot(&s);
                self.snapshots_emitted += 1;
            }
        }
    }
}

impl RunTap for StreamTap<'_> {
    fn block_connected(&mut self, world: &mut World) {
        let block =
            world.chain.blocks().last().expect("a block was just connected").clone();
        let cutoff = block.header.time;
        self.pending_blocks.push_back(block);
        self.drain_older_than(cutoff);
        let keep_from = world.chain.height().saturating_sub(PRUNE_KEEP_BLOCKS);
        world.chain.prune_below(keep_from);
    }

    fn snapshot_tick(&mut self, world: &mut World) {
        // At most one snapshot per tick lands in the primary stream (none
        // during an outage window); move it into the pending buffer.
        for snap in world.observer_streams[0].drain(..) {
            let cutoff = snap.time;
            self.pending_snapshots.push_back(snap);
            self.drain_older_than(cutoff);
        }
        // Fleet observers are not part of the logged stream; drop their
        // rows every tick so they cannot accumulate.
        for stream in world.observer_streams.iter_mut().skip(1) {
            stream.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PoolConfig;

    fn quick_scenario(seed: u64) -> Scenario {
        let mut s = Scenario::base("world-test", seed);
        s.duration = 2 * 3_600;
        s.users = 60;
        s.congestion = crate::congestion::CongestionProfile::flat(0.8);
        // Small blocks so contention exists even in a short run.
        s.params.max_block_weight = 200_000;
        s
    }

    #[test]
    fn produces_blocks_and_snapshots() {
        let out = World::new(quick_scenario(1)).run();
        assert!(out.chain.height() > 3, "height {}", out.chain.height());
        assert!(out.snapshots.len() > 100);
        assert!(out.chain.body_tx_count() > 100);
        assert_eq!(out.block_miners.len(), out.chain.height() as usize);
    }

    #[test]
    fn streamed_run_matches_monolithic_artifacts() {
        let out = World::new(quick_scenario(5)).run();
        let mut sink = crate::sink::CollectingSink::default();
        let summary = World::new(quick_scenario(5)).run_streamed(&mut sink);

        assert_eq!(summary.blocks, out.chain.height());
        assert_eq!(sink.blocks.len(), out.chain.height() as usize);
        for (streamed, monolithic) in sink.blocks.iter().zip(out.chain.blocks()) {
            assert_eq!(streamed.block_hash(), monolithic.block_hash());
        }
        assert_eq!(sink.snapshots, out.snapshots);
        assert_eq!(summary.snapshots as usize, out.snapshots.len());
        assert_eq!(sink.seeds.len(), out.chain.seeded_transactions().len());

        // Canonical stream order: non-decreasing stamps, and within one
        // second every block precedes every snapshot (the batch
        // interleaver's tie-break).
        let stamps: Vec<(Timestamp, bool)> = sink
            .order
            .iter()
            .map(|&(is_block, i)| {
                if is_block {
                    (sink.blocks[i].header.time, true)
                } else {
                    (sink.snapshots[i].time, false)
                }
            })
            .collect();
        for w in stamps.windows(2) {
            assert!(w[0].0 <= w[1].0, "stream stamps regressed: {w:?}");
            if w[0].0 == w[1].0 {
                assert!(
                    !w[1].1 || w[0].1,
                    "snapshot emitted before a same-second block: {w:?}"
                );
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = World::new(quick_scenario(7)).run();
        let b = World::new(quick_scenario(7)).run();
        assert_eq!(a.chain.height(), b.chain.height());
        assert_eq!(a.chain.tip_hash(), b.chain.tip_hash());
        assert_eq!(a.snapshots.len(), b.snapshots.len());
        assert_eq!(a.block_miners, b.block_miners);
    }

    #[test]
    fn checkpoint_fork_matches_direct_construction() {
        // Fork-and-replay must be invisible in the output: a world forked
        // off a shared checkpoint produces the same chain, snapshots, and
        // miner sequence as one built from scratch — including when the
        // fork varies the fault plan and name, the robustness sweep's
        // exact usage.
        let base = quick_scenario(11);
        let checkpoint = WorldCheckpoint::new(&base);
        for intensity in [0.0, 0.6] {
            let mut scenario = quick_scenario(11);
            scenario.name = format!("fork-{intensity:.2}");
            scenario.faults = cn_net::FaultPlan::scaled(intensity);
            let direct = World::new(scenario.clone()).run();
            let forked = checkpoint.fork(scenario).run();
            assert_eq!(direct.chain.tip_hash(), forked.chain.tip_hash());
            assert_eq!(direct.block_miners, forked.block_miners);
            assert_eq!(direct.snapshots.len(), forked.snapshots.len());
            assert_eq!(direct.orphaned_blocks, forked.orphaned_blocks);
        }
    }

    #[test]
    #[should_panic(expected = "checkpoint seed mismatch")]
    fn checkpoint_rejects_foreign_seed() {
        let checkpoint = WorldCheckpoint::new(&quick_scenario(1));
        let _ = checkpoint.fork(quick_scenario(2));
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::new(quick_scenario(1)).run();
        let b = World::new(quick_scenario(2)).run();
        assert_ne!(a.chain.tip_hash(), b.chain.tip_hash());
    }

    #[test]
    fn hash_rate_shares_roughly_honored() {
        let mut s = quick_scenario(3);
        s.duration = 8 * 3_600; // more blocks for the share estimate
        let out = World::new(s).run();
        let total = out.block_miners.len() as f64;
        let share0 = out.block_miners.iter().filter(|&&m| m == 0).count() as f64 / total;
        // Pool 0 has 40% of the hash rate.
        assert!((share0 - 0.4).abs() < 0.15, "share {share0}");
    }

    #[test]
    fn self_interest_txs_recorded_and_mined() {
        let mut s = quick_scenario(4);
        s.self_interest_rate = 0.01;
        s.duration = 4 * 3_600;
        let out = World::new(s).run();
        let self_txs: usize = out
            .pool_names
            .iter()
            .map(|n| out.truth.self_interest_txids(n).len())
            .sum();
        assert!(self_txs > 0, "no self-interest txs issued");
    }

    #[test]
    fn dark_fee_orders_recorded() {
        let mut s = quick_scenario(5);
        s.pools[1] = PoolConfig::honest("Beta", 0.35, 1)
            .with_behavior(PoolBehavior::DarkFee { premium: 1.5 });
        s.acceleration_demand = 0.05;
        let out = World::new(s).run();
        assert!(!out.truth.accelerated_txids().is_empty());
        let svc = out.services[1].as_ref().expect("provider service");
        assert!(svc.lock().order_count() > 0);
    }

    #[test]
    fn scam_donations_target_scam_address() {
        let mut s = quick_scenario(6);
        s.scam = Some(crate::scenario::ScamConfig {
            window_start: 600,
            window_end: 5_000,
            donation_prob: 0.1,
        });
        let out = World::new(s).run();
        let scam_txids = out.truth.scam_txids();
        assert!(!scam_txids.is_empty());
        let scam_addr = out.truth.scam_address().expect("set");
        // Every scam tx pays the scam address.
        for b in out.chain.blocks() {
            for tx in b.body() {
                if scam_txids.contains(&tx.txid()) {
                    assert!(tx.output_addresses().any(|a| a == scam_addr));
                }
            }
        }
    }

    #[test]
    fn empty_block_probability_respected() {
        let mut s = quick_scenario(9);
        s.empty_block_prob = 1.0;
        let out = World::new(s).run();
        assert!(out.chain.height() > 0);
        assert_eq!(
            out.chain.empty_block_count(),
            out.chain.height() as usize,
            "every block must be empty at probability 1"
        );
        let mut s = quick_scenario(9);
        s.empty_block_prob = 0.0;
        let out = World::new(s).run();
        // With steady traffic and p=0 only a drained mempool yields an
        // empty block; at this congestion level that never happens.
        assert!(out.chain.empty_block_count() < out.chain.height() as usize / 2);
    }

    #[test]
    fn chain_is_fully_valid_by_construction() {
        // connect() already validates; a completed run with blocks proves
        // the workload never produced an invalid spend. Assert fees add up.
        let out = World::new(quick_scenario(8)).run();
        assert!(out.chain.total_fees() > Amount::ZERO);
        assert_eq!(out.chain.records().len(), out.chain.blocks().len());
    }
}
