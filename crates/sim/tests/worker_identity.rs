//! Byte-identity of sharded workload pre-generation: the same scenario
//! run at any fork-join worker count must produce exactly the same
//! artifacts as the serial loop — chain, snapshot streams, miner
//! sequence, and event counters. This is the determinism-join contract
//! (DESIGN.md §8) enforced end-to-end through the simulator.

use cn_sim::{CongestionProfile, PoolBehavior, PoolConfig, ScamConfig, Scenario, SimOutput, World};
use proptest::prelude::*;

fn scenario(seed: u64) -> Scenario {
    let mut s = Scenario::base("worker-identity", seed);
    s.duration = 2 * 3_600;
    s.users = 60;
    s.congestion = CongestionProfile::flat(0.8);
    // Small blocks so contention exists even in a short run.
    s.params.max_block_weight = 200_000;
    s
}

/// A scenario exercising every pre-drawn field: scam flips, acceleration
/// demand with a dark-fee provider, zero-fee deviants, CPFP, and pool
/// self-transfers.
fn full_feature_scenario(seed: u64) -> Scenario {
    let mut s = scenario(seed);
    s.pools[1] = PoolConfig::honest("Beta", 0.35, 1)
        .with_behavior(PoolBehavior::DarkFee { premium: 1.5 });
    s.acceleration_demand = 0.05;
    s.zero_fee_prob = 0.02;
    s.self_interest_rate = 0.01;
    s.scam = Some(ScamConfig { window_start: 600, window_end: 5_000, donation_prob: 0.1 });
    s
}

fn assert_identical(serial: &SimOutput, parallel: &SimOutput, workers: usize) {
    assert_eq!(serial.chain.tip_hash(), parallel.chain.tip_hash(), "workers={workers}");
    assert_eq!(serial.chain.height(), parallel.chain.height(), "workers={workers}");
    assert_eq!(serial.block_miners, parallel.block_miners, "workers={workers}");
    assert_eq!(serial.snapshots, parallel.snapshots, "workers={workers}");
    assert_eq!(serial.observer_streams, parallel.observer_streams, "workers={workers}");
    assert_eq!(serial.orphaned_blocks, parallel.orphaned_blocks, "workers={workers}");
    assert_eq!(serial.profile.user_txs, parallel.profile.user_txs, "workers={workers}");
    assert_eq!(serial.profile.self_txs, parallel.profile.self_txs, "workers={workers}");
    assert_eq!(serial.profile.deliveries, parallel.profile.deliveries, "workers={workers}");
    assert_eq!(serial.profile.events_popped, parallel.profile.events_popped, "workers={workers}");
}

#[test]
fn full_feature_scenario_is_worker_invariant() {
    let serial = World::new(full_feature_scenario(41)).with_workers(1).run();
    assert!(serial.profile.user_txs > 100, "scenario must generate real traffic");
    assert!(serial.profile.self_txs > 0, "scenario must exercise self-transfers");
    assert!(!serial.truth.accelerated_txids().is_empty(), "must exercise provider draws");
    for workers in [2, 3, 8] {
        let parallel = World::new(full_feature_scenario(41)).with_workers(workers).run();
        assert_identical(&serial, &parallel, workers);
    }
}

#[test]
fn pregen_profile_accounts_for_all_draws() {
    let out = World::new(scenario(42)).with_workers(4).run();
    let p = &out.profile;
    assert!(p.pregen_batches > 0, "user traffic must trigger pre-generation");
    let per_slot: u64 = p.pregen_shard_items.iter().sum();
    assert_eq!(per_slot, p.pregen_items, "shard breakdown must cover every item");
    assert!(p.pregen_items >= p.user_txs, "every issued tx consumes one pre-drawn record");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Randomized: any seed, any worker count 2..=8, bit-identical output.
    #[test]
    fn any_worker_count_matches_serial(seed in 0u64..1_000_000, workers in 2usize..=8) {
        let serial = World::new(scenario(seed)).with_workers(1).run();
        let parallel = World::new(scenario(seed)).with_workers(workers).run();
        assert_identical(&serial, &parallel, workers);
    }
}
