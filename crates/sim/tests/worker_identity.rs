//! Byte-identity of sharded workload pre-generation: the same scenario
//! run at any fork-join worker count must produce exactly the same
//! artifacts as the serial loop — chain, snapshot streams, miner
//! sequence, and event counters. This is the determinism-join contract
//! (DESIGN.md §8) enforced end-to-end through the simulator.

use cn_net::FaultPlan;
use cn_sim::scenario::ObserverConfig;
use cn_sim::{
    CongestionProfile, PoolBehavior, PoolConfig, ScamConfig, Scenario, SimOutput, World,
};
use proptest::prelude::*;

fn scenario(seed: u64) -> Scenario {
    let mut s = Scenario::base("worker-identity", seed);
    s.duration = 2 * 3_600;
    s.users = 60;
    s.congestion = CongestionProfile::flat(0.8);
    // Small blocks so contention exists even in a short run.
    s.params.max_block_weight = 200_000;
    s
}

/// A scenario exercising every pre-drawn field: scam flips, acceleration
/// demand with a dark-fee provider, zero-fee deviants, CPFP, and pool
/// self-transfers.
fn full_feature_scenario(seed: u64) -> Scenario {
    let mut s = scenario(seed);
    s.pools[1] = PoolConfig::honest("Beta", 0.35, 1)
        .with_behavior(PoolBehavior::DarkFee { premium: 1.5 });
    s.acceleration_demand = 0.05;
    s.zero_fee_prob = 0.02;
    s.self_interest_rate = 0.01;
    s.scam = Some(ScamConfig { window_start: 600, window_end: 5_000, donation_prob: 0.1 });
    s
}

fn assert_identical(serial: &SimOutput, parallel: &SimOutput, workers: usize) {
    assert_eq!(serial.chain.tip_hash(), parallel.chain.tip_hash(), "workers={workers}");
    assert_eq!(serial.chain.height(), parallel.chain.height(), "workers={workers}");
    assert_eq!(serial.block_miners, parallel.block_miners, "workers={workers}");
    assert_eq!(serial.snapshots, parallel.snapshots, "workers={workers}");
    assert_eq!(serial.observer_streams, parallel.observer_streams, "workers={workers}");
    assert_eq!(serial.orphaned_blocks, parallel.orphaned_blocks, "workers={workers}");
    assert_eq!(serial.profile.user_txs, parallel.profile.user_txs, "workers={workers}");
    assert_eq!(serial.profile.self_txs, parallel.profile.self_txs, "workers={workers}");
    assert_eq!(serial.profile.deliveries, parallel.profile.deliveries, "workers={workers}");
    assert_eq!(serial.profile.events_popped, parallel.profile.events_popped, "workers={workers}");
}

#[test]
fn full_feature_scenario_is_worker_invariant() {
    let serial = World::new(full_feature_scenario(41)).with_workers(1).run();
    assert!(serial.profile.user_txs > 100, "scenario must generate real traffic");
    assert!(serial.profile.self_txs > 0, "scenario must exercise self-transfers");
    assert!(!serial.truth.accelerated_txids().is_empty(), "must exercise provider draws");
    for workers in [2, 3, 8] {
        let parallel = World::new(full_feature_scenario(41)).with_workers(workers).run();
        assert_identical(&serial, &parallel, workers);
    }
}

#[test]
fn pregen_profile_accounts_for_all_draws() {
    let out = World::new(scenario(42)).with_workers(4).run();
    let p = &out.profile;
    assert!(p.pregen_batches > 0, "user traffic must trigger pre-generation");
    let per_slot: u64 = p.pregen_shard_items.iter().sum();
    assert_eq!(per_slot, p.pregen_items, "shard breakdown must cover every item");
    assert!(p.pregen_items >= p.user_txs, "every issued tx consumes one pre-drawn record");
}

/// Near-zero link latency collapses every broadcast's fan-out onto one
/// millisecond (delivery delays floor at `now + 1`), so the event loop's
/// same-timestamp drain forms a multi-delivery batch for essentially
/// every transaction — the batched-admission path runs constantly
/// instead of occasionally.
fn batched_delivery_scenario(seed: u64) -> Scenario {
    let mut s = scenario(seed);
    s.link_latency_median = 1e-9;
    s.link_latency_sigma = 1e-6;
    // Extra node views so one broadcast fans to several disjoint pools
    // inside a single batch.
    s.observers = (0..3).map(|i| ObserverConfig::default_node().named(format!("o{i}"))).collect();
    s.relay_nodes = 2;
    s
}

fn assert_batch_counters_identical(serial: &SimOutput, parallel: &SimOutput, workers: usize) {
    let (s, p) = (&serial.profile, &parallel.profile);
    assert_eq!(s.delivery_batches, p.delivery_batches, "workers={workers}");
    assert_eq!(s.batched_deliveries, p.batched_deliveries, "workers={workers}");
    assert_eq!(s.max_delivery_batch, p.max_delivery_batch, "workers={workers}");
    assert_eq!(s.admission_precheck_hits, p.admission_precheck_hits, "workers={workers}");
}

/// Batched same-timestamp admission at widths 1–8: the per-batch node
/// grouping and worker fan-out must not change a single byte of output,
/// and the batch counters themselves must be width-invariant.
#[test]
fn batched_deliveries_are_worker_invariant() {
    let serial = World::new(batched_delivery_scenario(7)).with_workers(1).run();
    let p = &serial.profile;
    assert!(p.delivery_batches > 0, "floored latency must form same-timestamp batches");
    assert!(p.batched_deliveries >= 2 * p.delivery_batches, "a batch holds ≥2 deliveries");
    assert!(p.max_delivery_batch >= 2, "widest batch must be a real batch");
    assert!(p.admission_precheck_hits > 0, "fan-out must reuse the relay precheck memo");
    for workers in [2, 3, 5, 8] {
        let parallel = World::new(batched_delivery_scenario(7)).with_workers(workers).run();
        assert_identical(&serial, &parallel, workers);
        assert_batch_counters_identical(&serial, &parallel, workers);
    }
}

/// Same-timestamp batches under an aggressive fault plan: losses carve
/// partial fan-outs (some nodes never see a tx), duplicates re-deliver
/// into pools that already hold the tx, and reorder jitter shuffles pop
/// order. The batched path must agree with serial through all of it.
#[test]
fn faulted_partial_deliveries_are_worker_invariant() {
    let faulted = |seed| {
        let mut s = batched_delivery_scenario(seed);
        s.faults = FaultPlan::scaled(0.6);
        s
    };
    let serial = World::new(faulted(11)).with_workers(1).run();
    assert!(serial.profile.delivery_batches > 0, "faulted run must still batch");
    for workers in [2, 4, 8] {
        let parallel = World::new(faulted(11)).with_workers(workers).run();
        assert_identical(&serial, &parallel, workers);
        assert_batch_counters_identical(&serial, &parallel, workers);
    }
}

/// Parallel per-pool block ticks at widths 1–8: every mined block fans
/// `apply_block` across all node mempools on the worker pool, so a run
/// with a fleet of views exercises the parallel eviction path on every
/// block. Chain, streams, and counters must be width-invariant.
#[test]
fn parallel_block_tick_is_worker_invariant() {
    let fleet = |seed| {
        let mut s = full_feature_scenario(seed);
        s.observers =
            (0..4).map(|i| ObserverConfig::default_node().named(format!("v{i}"))).collect();
        s.relay_nodes = 3;
        s
    };
    let serial = World::new(fleet(19)).with_workers(1).run();
    assert!(serial.profile.blocks > 0, "scenario must mine blocks");
    assert!(serial.chain.height() > 0, "blocks must connect");
    for workers in [2, 6, 8] {
        let parallel = World::new(fleet(19)).with_workers(workers).run();
        assert_identical(&serial, &parallel, workers);
        assert_batch_counters_identical(&serial, &parallel, workers);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Randomized: any seed, any worker count 2..=8, bit-identical output.
    #[test]
    fn any_worker_count_matches_serial(seed in 0u64..1_000_000, workers in 2usize..=8) {
        let serial = World::new(scenario(seed)).with_workers(1).run();
        let parallel = World::new(scenario(seed)).with_workers(workers).run();
        assert_identical(&serial, &parallel, workers);
    }
}
