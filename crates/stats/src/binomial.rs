//! The paper's differential-prioritization test (§5.1).
//!
//! Given a miner with normalized hash rate `θ₀`, and `y` blocks that contain
//! at least one transaction from the set under test (*c-blocks*), of which
//! `x` were mined by that miner, the acceleration test computes
//! `p = Pr(B ≥ x)` and the deceleration test `p = Pr(B ≤ x)` for
//! `B ~ Binomial(y, θ₀)`. Small p-values reject the null "the miner treats
//! these transactions like everyone else."

use crate::lgamma::{ln_add_exp, ln_binomial};
use crate::normal::normal_cdf;
use serde::{Deserialize, Serialize};

/// Which tail of the binomial distribution to accumulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tail {
    /// `Pr(B ≥ x)` — the acceleration test (H₁: θ > θ₀).
    Upper,
    /// `Pr(B ≤ x)` — the deceleration test (H₁: θ < θ₀).
    Lower,
}

/// Result of a one-sided binomial test.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BinomialTest {
    /// Observed successes (c-blocks mined by the miner under test).
    pub x: u64,
    /// Trials (c-blocks in total).
    pub y: u64,
    /// Null success probability (the miner's normalized hash rate).
    pub theta0: f64,
    /// The tail accumulated.
    pub tail: Tail,
    /// The p-value.
    pub p_value: f64,
}

impl BinomialTest {
    /// True when the null is rejected at significance `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Exact one-sided binomial test, computed in log space.
///
/// ```
/// use cn_stats::{binomial_test, Tail};
/// // Table 2's F2Pool row: 466 of 839 c-blocks at a 17.53% hash rate.
/// let t = binomial_test(466, 839, 0.1753, Tail::Upper);
/// assert!(t.p_value < 1e-100);
/// assert!(t.rejects_at(0.001));
/// ```
///
/// # Panics
/// Panics when `x > y` or `theta0` is outside `[0, 1]` — both indicate a
/// bug in the caller's block accounting rather than unusual data.
pub fn binomial_test(x: u64, y: u64, theta0: f64, tail: Tail) -> BinomialTest {
    assert!(x <= y, "observed {x} successes out of {y} trials");
    assert!((0.0..=1.0).contains(&theta0), "theta0 = {theta0} outside [0,1]");
    let p_value = match tail {
        Tail::Upper => binomial_tail_upper(x, y, theta0),
        Tail::Lower => binomial_tail_lower(x, y, theta0),
    };
    BinomialTest { x, y, theta0, tail, p_value }
}

/// `Pr(B ≥ x)` for `B ~ Binomial(y, θ)`.
pub fn binomial_tail_upper(x: u64, y: u64, theta: f64) -> f64 {
    if x == 0 {
        return 1.0;
    }
    if theta <= 0.0 {
        return 0.0; // x >= 1 successes impossible
    }
    if theta >= 1.0 {
        return 1.0; // all trials succeed, so B = y >= x
    }
    // Sum the smaller tail for speed/accuracy, complementing when needed.
    // Upper tail sums y - x + 1 terms; if the lower tail is shorter, do 1 - lower(x-1).
    if x <= y - x {
        1.0 - binomial_tail_lower(x - 1, y, theta)
    } else {
        sum_pmf_range(x, y, y, theta).exp().min(1.0)
    }
}

/// `Pr(B ≤ x)` for `B ~ Binomial(y, θ)`.
pub fn binomial_tail_lower(x: u64, y: u64, theta: f64) -> f64 {
    if x >= y {
        return 1.0;
    }
    if theta <= 0.0 {
        return 1.0; // B = 0 <= x always
    }
    if theta >= 1.0 {
        return 0.0; // B = y > x
    }
    if y - x <= x {
        1.0 - binomial_tail_upper(x + 1, y, theta)
    } else {
        sum_pmf_range(0, x, y, theta).exp().min(1.0)
    }
}

/// log of `sum_{k=lo..=hi} C(y,k) θ^k (1-θ)^(y-k)`.
fn sum_pmf_range(lo: u64, hi: u64, y: u64, theta: f64) -> f64 {
    let ln_theta = theta.ln();
    let ln_1m = (-theta).ln_1p();
    let mut acc = f64::NEG_INFINITY;
    for k in lo..=hi {
        let term = ln_binomial(y, k) + k as f64 * ln_theta + (y - k) as f64 * ln_1m;
        acc = ln_add_exp(acc, term);
    }
    acc
}

/// Normal approximation to the acceleration test p-value (§5.1.3):
/// `Φ((x - yθ₀)/sqrt(yθ₀(1-θ₀)))` — note the paper writes the CDF of the
/// *standardized deficit*; for the upper tail this is `1 - Φ(z)` with a
/// continuity correction of one half.
///
/// The distribution boundaries are pinned to their exact values: at `x = 0`
/// the upper tail is `Pr(B ≥ 0) = 1` and at `x = y` the lower tail is
/// `Pr(B ≤ y) = 1` by definition, but the half-unit continuity correction
/// would otherwise report strictly less than one (e.g. `x = 0, y = 4,
/// θ₀ = 0.5` gave ≈ 0.994) — a silent exit from the approximation's
/// validity region at exactly the inputs where callers rely on the test
/// being vacuous.
///
/// # Panics
/// Panics when `x > y` or `theta0` is outside `[0, 1]`, matching
/// [`binomial_test`].
pub fn binomial_test_normal_approx(x: u64, y: u64, theta0: f64, tail: Tail) -> BinomialTest {
    assert!(x <= y, "observed {x} successes out of {y} trials");
    assert!((0.0..=1.0).contains(&theta0), "theta0 = {theta0} outside [0,1]");
    let mean = y as f64 * theta0;
    let sd = (y as f64 * theta0 * (1.0 - theta0)).sqrt();
    let p_value = if (x == 0 && tail == Tail::Upper) || (x == y && tail == Tail::Lower) {
        // Pr(B >= 0) and Pr(B <= y) are exactly 1; the half-unit
        // continuity correction would otherwise undershoot.
        1.0
    } else if sd == 0.0 {
        // Degenerate null: all mass at 0 or y.
        match tail {
            Tail::Upper => {
                if (theta0 >= 1.0 && x <= y) || x == 0 {
                    1.0
                } else {
                    0.0
                }
            }
            Tail::Lower => {
                if theta0 <= 0.0 || x >= y {
                    1.0
                } else {
                    0.0
                }
            }
        }
    } else {
        match tail {
            // Pr(B >= x) ≈ 1 - Φ((x - 0.5 - mean)/sd)
            Tail::Upper => 1.0 - normal_cdf((x as f64 - 0.5 - mean) / sd),
            // Pr(B <= x) ≈ Φ((x + 0.5 - mean)/sd)
            Tail::Lower => normal_cdf((x as f64 + 0.5 - mean) / sd),
        }
    };
    BinomialTest { x, y, theta0, tail, p_value: p_value.clamp(0.0, 1.0) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn fair_coin_exact_values() {
        // Pr(B >= 8 | n=10, p=0.5) = (45 + 10 + 1)/1024
        assert_close(
            binomial_test(8, 10, 0.5, Tail::Upper).p_value,
            56.0 / 1024.0,
            1e-12,
        );
        // Pr(B <= 2 | n=10, p=0.5) symmetric
        assert_close(
            binomial_test(2, 10, 0.5, Tail::Lower).p_value,
            56.0 / 1024.0,
            1e-12,
        );
    }

    #[test]
    fn boundary_cases() {
        assert_eq!(binomial_test(0, 10, 0.3, Tail::Upper).p_value, 1.0);
        assert_eq!(binomial_test(10, 10, 0.3, Tail::Lower).p_value, 1.0);
        assert_close(
            binomial_test(10, 10, 0.5, Tail::Upper).p_value,
            1.0 / 1024.0,
            1e-15,
        );
        assert_close(
            binomial_test(0, 10, 0.5, Tail::Lower).p_value,
            1.0 / 1024.0,
            1e-15,
        );
    }

    #[test]
    fn degenerate_theta() {
        assert_eq!(binomial_test(3, 10, 0.0, Tail::Upper).p_value, 0.0);
        assert_eq!(binomial_test(0, 10, 0.0, Tail::Upper).p_value, 1.0);
        assert_eq!(binomial_test(3, 10, 0.0, Tail::Lower).p_value, 1.0);
        assert_eq!(binomial_test(10, 10, 1.0, Tail::Upper).p_value, 1.0);
        assert_eq!(binomial_test(3, 10, 1.0, Tail::Lower).p_value, 0.0);
    }

    #[test]
    fn upper_and_lower_tails_complement() {
        for &(x, y, theta) in &[(3u64, 20u64, 0.1f64), (10, 50, 0.3), (100, 400, 0.22)] {
            let upper = binomial_test(x, y, theta, Tail::Upper).p_value;
            let lower_below = binomial_test(x - 1, y, theta, Tail::Lower).p_value;
            assert_close(upper + lower_below, 1.0, 1e-10);
        }
    }

    #[test]
    fn paper_magnitude_case() {
        // Table 2, F2Pool row: θ₀ = 0.1753, x = 466, y = 839.
        // The paper reports p ≈ 0.0000 for acceleration.
        let t = binomial_test(466, 839, 0.1753, Tail::Upper);
        assert!(t.p_value < 1e-100, "p = {}", t.p_value);
        assert!(t.rejects_at(0.001));
        // And the deceleration test on the same data is ~1.
        let d = binomial_test(466, 839, 0.1753, Tail::Lower);
        assert!(d.p_value > 0.999_999);
    }

    #[test]
    fn null_data_is_not_flagged() {
        // x close to expectation should give a large p-value.
        let t = binomial_test(150, 1000, 0.15, Tail::Upper);
        assert!(t.p_value > 0.4, "p = {}", t.p_value);
        assert!(!t.rejects_at(0.01));
    }

    #[test]
    fn normal_approx_close_to_exact_in_validity_region() {
        for &(x, y, theta) in &[
            (120u64, 1000u64, 0.1f64),
            (320, 1000, 0.3),
            (5100, 10000, 0.5),
            (80, 1000, 0.1),
        ] {
            for tail in [Tail::Upper, Tail::Lower] {
                let exact = binomial_test(x, y, theta, tail).p_value;
                let approx = binomial_test_normal_approx(x, y, theta, tail).p_value;
                assert!(
                    (exact - approx).abs() < 5e-3,
                    "x={x} y={y} θ={theta} {tail:?}: exact {exact} vs approx {approx}"
                );
            }
        }
    }

    #[test]
    fn large_y_does_not_overflow() {
        let t = binomial_test(60_000, 100_000, 0.5, Tail::Upper);
        assert!(t.p_value > 0.0 && t.p_value < 1e-300 || t.p_value == 0.0 || t.p_value < 1e-100);
        let t2 = binomial_test(50_100, 100_000, 0.5, Tail::Upper);
        assert!(t2.p_value > 0.2 && t2.p_value < 0.3);
    }

    #[test]
    #[should_panic(expected = "successes out of")]
    fn x_greater_than_y_panics() {
        let _ = binomial_test(11, 10, 0.5, Tail::Upper);
    }

    #[test]
    fn monotone_in_x() {
        let mut prev = 1.1;
        for x in 0..=50 {
            let p = binomial_test(x, 50, 0.4, Tail::Upper).p_value;
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn normal_approx_boundaries_match_exact() {
        // Regression: the continuity correction used to report < 1 at the
        // distribution boundaries, where the exact tail is 1 by definition.
        for y in [1u64, 4, 10, 839] {
            for theta in [0.01, 0.1753, 0.5, 0.99] {
                let up0 = binomial_test_normal_approx(0, y, theta, Tail::Upper);
                assert_eq!(up0.p_value, 1.0, "upper x=0 y={y} θ={theta}");
                assert_eq!(binomial_test(0, y, theta, Tail::Upper).p_value, up0.p_value);
                let loy = binomial_test_normal_approx(y, y, theta, Tail::Lower);
                assert_eq!(loy.p_value, 1.0, "lower x=y={y} θ={theta}");
                assert_eq!(binomial_test(y, y, theta, Tail::Lower).p_value, loy.p_value);
            }
        }
        // The opposite boundaries stay approximated (small but nonzero).
        let p = binomial_test_normal_approx(4, 4, 0.5, Tail::Upper).p_value;
        assert!(p > 0.0 && p < 0.1, "p = {p}");
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn normal_approx_rejects_bad_theta() {
        let _ = binomial_test_normal_approx(2, 10, 1.5, Tail::Upper);
    }

    #[test]
    fn monotone_in_theta() {
        // Pr(B >= x) is nondecreasing in θ; Pr(B <= x) is nonincreasing.
        // Holds for the exact test everywhere and for the approximation
        // (Φ is monotone in its argument, and z moves monotonically with θ
        // for fixed x, y away from the pinned boundaries).
        for (x, y) in [(3u64, 20u64), (10, 50), (0, 10), (10, 10), (466, 839)] {
            let thetas: Vec<f64> = (0..=40).map(|i| i as f64 / 40.0).collect();
            for tail in [Tail::Upper, Tail::Lower] {
                let mut prev_exact = match tail {
                    Tail::Upper => -0.1,
                    Tail::Lower => 1.1,
                };
                let mut prev_approx = prev_exact;
                for &theta in &thetas {
                    let e = binomial_test(x, y, theta, tail).p_value;
                    let a = binomial_test_normal_approx(x, y, theta, tail).p_value;
                    match tail {
                        Tail::Upper => {
                            assert!(e >= prev_exact - 1e-12, "exact x={x} y={y} θ={theta}");
                            assert!(a >= prev_approx - 1e-12, "approx x={x} y={y} θ={theta}");
                        }
                        Tail::Lower => {
                            assert!(e <= prev_exact + 1e-12, "exact x={x} y={y} θ={theta}");
                            assert!(a <= prev_approx + 1e-12, "approx x={x} y={y} θ={theta}");
                        }
                    }
                    prev_exact = e;
                    prev_approx = a;
                }
            }
        }
    }
}
