//! Sampling distributions for the workload generator.
//!
//! Implemented here (instead of pulling `rand_distr`) to keep dependencies
//! within the sanctioned offline set; each sampler is validated against its
//! analytic moments in tests.

use crate::rng::SimRng;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Inter-block times and Poisson-process inter-arrival gaps are exponential.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential with the given rate.
    ///
    /// # Panics
    /// Panics for non-positive or non-finite rates.
    pub fn new(lambda: f64) -> Exponential {
        assert!(lambda.is_finite() && lambda > 0.0, "rate must be positive, got {lambda}");
        Exponential { lambda }
    }

    /// Creates an exponential with the given mean.
    pub fn with_mean(mean: f64) -> Exponential {
        Exponential::new(1.0 / mean)
    }

    /// Draws a sample by inverse-CDF.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        // 1 - U in (0, 1] avoids ln(0).
        let u = 1.0 - rng.next_f64();
        -u.ln() / self.lambda
    }
}

/// Poisson distribution with mean `lambda`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson with the given mean.
    ///
    /// # Panics
    /// Panics for negative or non-finite means.
    pub fn new(lambda: f64) -> Poisson {
        assert!(lambda.is_finite() && lambda >= 0.0, "mean must be non-negative, got {lambda}");
        Poisson { lambda }
    }

    /// Draws a sample: Knuth's product method below λ = 30, a
    /// normal-approximation with continuity correction above (adequate for
    /// workload generation, and branch-free of table lookups).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < 30.0 {
            let limit = (-self.lambda).exp();
            let mut product = rng.next_f64();
            let mut count = 0u64;
            while product > limit {
                product *= rng.next_f64();
                count += 1;
            }
            count
        } else {
            let normal = sample_standard_normal(rng);
            let v = self.lambda + self.lambda.sqrt() * normal + 0.5;
            if v < 0.0 {
                0
            } else {
                v as u64
            }
        }
    }
}

/// Log-normal distribution parameterized by the underlying normal's
/// `mu` and `sigma`.
///
/// Transaction sizes, values, and P2P link latencies are heavy-tailed;
/// log-normal matches their empirical shape well.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with the given log-space parameters.
    ///
    /// # Panics
    /// Panics for non-finite `mu` or non-positive/non-finite `sigma`.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(mu.is_finite(), "mu must be finite");
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive, got {sigma}");
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal with the given *linear-space* median and
    /// log-space sigma — the natural way to calibrate "typical value X,
    /// spread factor exp(sigma)".
    pub fn with_median(median: f64, sigma: f64) -> LogNormal {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * sample_standard_normal(rng)).exp()
    }
}

/// Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
///
/// Used for the heavy tail of fee-rate over-bidding during congestion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    /// Panics for non-positive scale or shape.
    pub fn new(x_min: f64, alpha: f64) -> Pareto {
        assert!(x_min > 0.0, "scale must be positive");
        assert!(alpha > 0.0, "shape must be positive");
        Pareto { x_min, alpha }
    }

    /// Draws a sample by inverse-CDF.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = 1.0 - rng.next_f64();
        self.x_min * u.powf(-1.0 / self.alpha)
    }
}

/// Samples from a discrete distribution given non-negative weights.
///
/// Used to pick the pool that mines each block, proportional to hash rate.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics when `weights` is empty, contains a negative/non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> WeightedIndex {
        assert!(!weights.is_empty(), "need at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights sum to zero");
        WeightedIndex { cumulative }
    }

    /// Draws an index with probability proportional to its weight.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let target = rng.next_f64() * total;
        self.cumulative.partition_point(|&c| c <= target).min(self.cumulative.len() - 1)
    }
}

/// Standard normal via Box–Muller (one value per call; the partner draw is
/// discarded for simplicity — workload generation is not RNG-bound).
fn sample_standard_normal(rng: &mut SimRng) -> f64 {
    let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0xfeed)
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(600.0);
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 600.0).abs() < 12.0, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(2.0);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let d = Poisson::new(3.5);
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<u64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples.iter().map(|&s| (s as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.06, "mean {mean}");
        assert!((var - 3.5).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let d = Poisson::new(500.0);
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| d.sample(&mut r)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 500.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let d = Poisson::new(0.0);
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 0);
    }

    #[test]
    fn lognormal_median_matches() {
        let d = LogNormal::with_median(250.0, 0.6);
        let mut r = rng();
        let n = 50_000;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = samples[n / 2];
        assert!((median / 250.0 - 1.0).abs() < 0.05, "median {median}");
        assert!(samples[0] > 0.0);
    }

    #[test]
    fn pareto_exceeds_scale_and_heavy_tail() {
        let d = Pareto::new(1.0, 2.0);
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&s| s >= 1.0));
        // Mean of Pareto(1, 2) is alpha/(alpha-1) = 2.
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn weighted_index_proportions() {
        let w = WeightedIndex::new(&[1.0, 3.0, 6.0]);
        let mut r = rng();
        let mut counts = [0u32; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[w.sample(&mut r)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01, "{counts:?}");
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01, "{counts:?}");
        assert!((counts[2] as f64 / n as f64 - 0.6).abs() < 0.01, "{counts:?}");
    }

    #[test]
    fn weighted_index_zero_weight_never_sampled() {
        let w = WeightedIndex::new(&[0.0, 1.0]);
        let mut r = rng();
        for _ in 0..1000 {
            assert_eq!(w.sample(&mut r), 1);
        }
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn all_zero_weights_panic() {
        let _ = WeightedIndex::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_bad_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
