//! Empirical cumulative distribution functions and quantiles.
//!
//! Every figure in the paper is a CDF of some population (PPE per block,
//! fee-rates, commit delays, Mempool sizes); [`Ecdf`] is the common engine
//! that evaluates and tabulates them.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
///
/// ```
/// use cn_stats::Ecdf;
/// let e = Ecdf::new(vec![1.0, 2.0, 2.0, 5.0]);
/// assert_eq!(e.eval(2.0), 0.75);
/// assert_eq!(e.quantile(0.5), 2.0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample, ignoring NaNs.
    ///
    /// # Panics
    /// Panics when the (NaN-filtered) sample is empty.
    pub fn new(mut values: Vec<f64>) -> Ecdf {
        values.retain(|v| !v.is_nan());
        assert!(!values.is_empty(), "ECDF needs at least one finite value");
        values.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
        Ecdf { sorted: values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: the fraction of samples `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q` in `[0, 1]`, using the nearest-rank method.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// The sample minimum.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// The sample maximum.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// The sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Tabulates `(x, F(x))` at `points` evenly spaced sample quantiles —
    /// the series a plotting tool would consume to draw the figure.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two curve points");
        (0..points)
            .map(|i| {
                let q = i as f64 / (points - 1) as f64;
                let x = self.quantile(q);
                (x, self.eval(x))
            })
            .collect()
    }

    /// The underlying sorted sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets plus overflow.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    /// Panics when `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo, "empty range");
        assert!(bins > 0, "need at least one bin");
        Histogram { lo, width: (hi - lo) / bins as f64, counts: vec![0; bins], overflow: 0, underflow: 0 }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Bin counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow + self.underflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_steps_at_sample_points() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.2), 10.0);
        assert_eq!(e.quantile(0.5), 30.0);
        assert_eq!(e.quantile(1.0), 50.0);
        assert_eq!(e.quantile(0.21), 20.0);
    }

    #[test]
    fn handles_duplicates() {
        let e = Ecdf::new(vec![5.0, 5.0, 5.0, 7.0]);
        assert_eq!(e.eval(5.0), 0.75);
        assert_eq!(e.eval(4.9), 0.0);
        assert_eq!(e.quantile(0.5), 5.0);
    }

    #[test]
    fn nan_filtered() {
        let e = Ecdf::new(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one finite value")]
    fn empty_panics() {
        let _ = Ecdf::new(vec![f64::NAN]);
    }

    #[test]
    fn curve_is_monotone() {
        let values: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let e = Ecdf::new(values);
        let curve = e.curve(50);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(curve.last().expect("non-empty").1, 1.0);
    }

    #[test]
    fn summary_accessors() {
        let e = Ecdf::new(vec![2.0, 8.0]);
        assert_eq!(e.min(), 2.0);
        assert_eq!(e.max(), 8.0);
        assert_eq!(e.mean(), 5.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.9, 10.0, 11.0, -1.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 7);
    }
}
