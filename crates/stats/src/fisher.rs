//! Fisher's method for combining independent p-values (§5.1.3).
//!
//! When hash rates drift over a long window, the paper splits the window
//! into pieces with roughly constant hash rate, tests each, and combines:
//! `X = -2 Σ ln pᵢ ~ χ²(2n)` under the joint null. Because the degrees of
//! freedom are always even, the χ² survival function has the closed form
//! `exp(-x/2) Σ_{j<n} (x/2)^j / j!`, which we evaluate in log space.

use crate::lgamma::{ln_add_exp, ln_factorial};

/// Survival function `Pr(χ²(2n) > x)` for even degrees of freedom `2n`.
///
/// # Panics
/// Panics when `n == 0` or `x` is negative/NaN.
pub fn chi2_sf_even(x: f64, n: u64) -> f64 {
    assert!(n > 0, "chi-square needs at least 2 degrees of freedom");
    assert!(x >= 0.0, "chi-square statistic must be non-negative, got {x}");
    let half = x / 2.0;
    if half == 0.0 {
        return 1.0;
    }
    // ln of sum_{j=0}^{n-1} half^j / j!
    let ln_half = half.ln();
    let mut acc = f64::NEG_INFINITY;
    for j in 0..n {
        acc = ln_add_exp(acc, j as f64 * ln_half - ln_factorial(j));
    }
    (acc - half).exp().min(1.0)
}

/// Combines independent p-values with Fisher's method, returning the
/// combined p-value. Zero p-values are clamped to `f64::MIN_POSITIVE` so a
/// single underflowed input yields a (correctly) zero combined p rather
/// than NaN.
///
/// # Panics
/// Panics on an empty slice or on p-values outside `[0, 1]`.
pub fn fisher_combine(p_values: &[f64]) -> f64 {
    assert!(!p_values.is_empty(), "cannot combine zero p-values");
    let mut stat = 0.0;
    for &p in p_values {
        assert!((0.0..=1.0).contains(&p), "p-value {p} outside [0,1]");
        let p = p.max(f64::MIN_POSITIVE);
        stat += -2.0 * p.ln();
    }
    chi2_sf_even(stat, p_values.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn chi2_known_values() {
        // χ²(2): sf(x) = exp(-x/2)
        assert_close(chi2_sf_even(2.0, 1), (-1.0f64).exp(), 1e-12);
        assert_close(chi2_sf_even(5.991, 1), 0.05, 1e-3); // 95th pct of χ²(2)
        // χ²(4): sf(x) = exp(-x/2)(1 + x/2)
        assert_close(chi2_sf_even(4.0, 2), (-2.0f64).exp() * 3.0, 1e-12);
        assert_close(chi2_sf_even(9.488, 2), 0.05, 1e-3); // 95th pct of χ²(4)
    }

    #[test]
    fn single_p_value_is_identity() {
        for p in [0.001, 0.05, 0.3, 0.9, 1.0] {
            assert_close(fisher_combine(&[p]), p, 1e-12);
        }
    }

    #[test]
    fn uniform_nulls_stay_unremarkable() {
        let p = fisher_combine(&[0.5, 0.5, 0.5, 0.5]);
        assert!(p > 0.3 && p < 0.9, "p = {p}");
    }

    #[test]
    fn repeated_small_evidence_compounds() {
        let single = 0.04;
        let combined = fisher_combine(&[single; 5]);
        assert!(combined < single, "combined {combined} should beat single {single}");
        assert!(combined < 1e-3);
    }

    #[test]
    fn one_strong_result_dominates() {
        let combined = fisher_combine(&[1e-12, 0.8, 0.9]);
        assert!(combined < 1e-8, "combined = {combined}");
    }

    #[test]
    fn zero_p_is_clamped_not_nan() {
        let combined = fisher_combine(&[0.0, 0.5]);
        assert!((0.0..1e-300).contains(&combined));
        assert!(!combined.is_nan());
    }

    #[test]
    fn all_ones_combine_to_one() {
        assert_close(fisher_combine(&[1.0, 1.0, 1.0]), 1.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot combine zero p-values")]
    fn empty_input_panics() {
        let _ = fisher_combine(&[]);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn out_of_range_p_panics() {
        let _ = fisher_combine(&[1.5]);
    }

    #[test]
    fn sf_monotone_in_x() {
        let mut prev = 1.0;
        for i in 0..200 {
            let x = i as f64 * 0.5;
            let p = chi2_sf_even(x, 5);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }
}
