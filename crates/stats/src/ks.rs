//! Two-sample Kolmogorov–Smirnov test.
//!
//! The paper repeatedly claims one population stochastically dominates
//! another ("fee rates are strictly higher at higher congestion levels",
//! Figure 4c). The experiment harness backs those claims with a KS test:
//! the statistic is the maximum ECDF gap, and the p-value uses the
//! asymptotic Kolmogorov distribution with the standard two-sample
//! effective size.

/// Result of a two-sample KS test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KsTest {
    /// The KS statistic `D = sup |F1 - F2|`.
    pub statistic: f64,
    /// Asymptotic two-sided p-value.
    pub p_value: f64,
    /// Sizes of the two samples.
    pub n: (usize, usize),
}

/// Runs the two-sample KS test. NaNs are ignored.
///
/// # Panics
/// Panics when either (NaN-filtered) sample is empty.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsTest {
    let mut a: Vec<f64> = a.iter().copied().filter(|v| !v.is_nan()).collect();
    let mut b: Vec<f64> = b.iter().copied().filter(|v| !v.is_nan()).collect();
    assert!(!a.is_empty() && !b.is_empty(), "KS test needs two non-empty samples");
    a.sort_by(|x, y| x.partial_cmp(y).expect("NaNs filtered"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("NaNs filtered"));
    let (n1, n2) = (a.len(), b.len());
    // Sweep the merged sample, tracking the ECDF gap.
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let x = a[i].min(b[j]);
        while i < n1 && a[i] <= x {
            i += 1;
        }
        while j < n2 && b[j] <= x {
            j += 1;
        }
        let gap = (i as f64 / n1 as f64 - j as f64 / n2 as f64).abs();
        d = d.max(gap);
    }
    let en = ((n1 * n2) as f64 / (n1 + n2) as f64).sqrt();
    KsTest { statistic: d, p_value: kolmogorov_sf((en + 0.12 + 0.11 / en) * d), n: (n1, n2) }
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²)` (Numerical Recipes form).
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    let mut term_prev = f64::MAX;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term <= 1e-17 || term / term_prev.max(1e-300) < 1e-10 && k > 3 {
            break;
        }
        term_prev = term;
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let t = ks_two_sample(&a, &a);
        assert_eq!(t.statistic, 0.0);
        assert!(t.p_value > 0.99);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        let t = ks_two_sample(&a, &b);
        assert!((t.statistic - 1.0).abs() < 1e-12);
        assert!(t.p_value < 0.1);
    }

    #[test]
    fn same_distribution_not_rejected() {
        let mut rng = SimRng::seed_from_u64(5);
        let a: Vec<f64> = (0..800).map(|_| rng.next_f64()).collect();
        let b: Vec<f64> = (0..800).map(|_| rng.next_f64()).collect();
        let t = ks_two_sample(&a, &b);
        assert!(t.p_value > 0.01, "p = {} (d = {})", t.p_value, t.statistic);
    }

    #[test]
    fn shifted_distribution_rejected() {
        let mut rng = SimRng::seed_from_u64(6);
        let a: Vec<f64> = (0..500).map(|_| rng.next_f64()).collect();
        let b: Vec<f64> = (0..500).map(|_| rng.next_f64() + 0.25).collect();
        let t = ks_two_sample(&a, &b);
        assert!(t.p_value < 1e-6, "p = {}", t.p_value);
        assert!(t.statistic > 0.2);
    }

    #[test]
    fn kolmogorov_sf_reference_values() {
        // Known values of the Kolmogorov distribution.
        assert!((kolmogorov_sf(1.36) - 0.0505).abs() < 3e-3); // ~5% point
        assert!((kolmogorov_sf(1.63) - 0.0098).abs() < 2e-3); // ~1% point
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(5.0) < 1e-10);
    }

    #[test]
    fn sf_is_monotone() {
        let mut prev = 1.0;
        for i in 0..60 {
            let x = i as f64 * 0.1;
            let p = kolmogorov_sf(x);
            assert!(p <= prev + 1e-12, "at {x}");
            prev = p;
        }
    }

    #[test]
    fn unequal_sizes_supported() {
        let a = [0.0, 1.0];
        let b = [0.5, 0.6, 0.7, 10.0, 11.0];
        let t = ks_two_sample(&a, &b);
        assert_eq!(t.n, (2, 5));
        assert!(t.statistic > 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        let _ = ks_two_sample(&[], &[1.0]);
    }
}
