//! Log-gamma and log-binomial coefficients.
//!
//! The exact binomial test sums terms `C(y, k) θ^k (1-θ)^(y-k)` for `y` in
//! the tens of thousands (one per block in dataset 𝒞); computing them in
//! log space via `ln Γ` keeps everything finite and accurate.

/// Natural log of the gamma function for `x > 0`, via the Lanczos
/// approximation (g = 7, n = 9), accurate to ~1e-13 relative error.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of `n!`.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0)
}

/// Natural log of the binomial coefficient `C(n, k)`; `-inf` when `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Numerically stable `ln(exp(a) + exp(b))`.
pub fn ln_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn gamma_known_values() {
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(5.0), (24.0f64).ln(), 1e-12); // Γ(5)=4!
        assert_close(ln_gamma(0.5), (std::f64::consts::PI.sqrt()).ln(), 1e-12);
        // Reference value from C99 lgamma(10.3).
        assert_close(ln_gamma(10.3), 13.482_036_786_138_36, 1e-10);
    }

    #[test]
    fn factorial_matches_direct() {
        let mut direct = 0.0f64;
        for n in 1..=170u64 {
            direct += (n as f64).ln();
            assert_close(ln_factorial(n), direct, 1e-11);
        }
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
    }

    #[test]
    fn binomial_small_cases() {
        assert_close(ln_binomial(5, 2), (10.0f64).ln(), 1e-12);
        assert_close(ln_binomial(10, 5), (252.0f64).ln(), 1e-12);
        assert_eq!(ln_binomial(5, 0), 0.0);
        assert_eq!(ln_binomial(5, 5), 0.0);
        assert_eq!(ln_binomial(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_symmetry_and_pascal() {
        for n in [20u64, 100, 1000] {
            for k in [1u64, 3, n / 2] {
                assert_close(ln_binomial(n, k), ln_binomial(n, n - k), 1e-10);
                // Pascal: C(n,k) = C(n-1,k-1) + C(n-1,k)
                let lhs = ln_binomial(n, k);
                let rhs = ln_add_exp(ln_binomial(n - 1, k - 1), ln_binomial(n - 1, k));
                assert_close(lhs, rhs, 1e-10);
            }
        }
    }

    #[test]
    fn ln_add_exp_handles_extremes() {
        assert_eq!(ln_add_exp(f64::NEG_INFINITY, 3.0), 3.0);
        assert_eq!(ln_add_exp(3.0, f64::NEG_INFINITY), 3.0);
        assert_close(ln_add_exp(0.0, 0.0), (2.0f64).ln(), 1e-14);
        // One term dominating by 800 nats must not overflow.
        assert_close(ln_add_exp(-1000.0, -200.0), -200.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
