//! # cn-stats — statistics substrate for blockchain ordering audits
//!
//! Implements, from first principles, every piece of statistical machinery
//! the paper's differential-prioritization methodology needs:
//!
//! * log-gamma / log-binomial coefficients ([`lgamma`]) for numerically
//!   stable exact binomial tail probabilities,
//! * the exact binomial acceleration/deceleration test of §5.1 plus the
//!   normal approximation of §5.1.3 ([`binomial`]),
//! * Fisher's method for combining windowed p-values ([`fisher`]),
//! * empirical CDFs, quantiles and summary statistics for every figure
//!   ([`ecdf`], [`summary`]),
//! * mergeable bounded-memory summaries for the streaming auditor — a
//!   fixed-precision quantile histogram and per-miner accumulators with an
//!   associative `merge` ([`stream`]),
//! * a deterministic, seedable RNG (xoshiro256++) and the sampling
//!   distributions the simulator draws from ([`rng`], [`dist`]) —
//!   implemented here rather than via `rand_distr` to stay within the
//!   sanctioned offline dependency set,
//! * a deterministic fork-join worker pool with an order-preserving join
//!   ([`parwork`]), the substrate for byte-identical intra-simulation
//!   parallelism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod dist;
pub mod ecdf;
pub mod fisher;
pub mod ks;
pub mod lgamma;
pub mod normal;
pub mod parwork;
pub mod rng;
pub mod stream;
pub mod summary;

pub use binomial::{binomial_test, BinomialTest, Tail};
pub use dist::{Exponential, LogNormal, Pareto, Poisson, WeightedIndex};
pub use ecdf::Ecdf;
pub use fisher::fisher_combine;
pub use ks::{ks_two_sample, KsTest};
pub use lgamma::{ln_binomial, ln_factorial, ln_gamma};
pub use normal::{normal_cdf, normal_sf};
pub use parwork::{Pool, ShardTiming};
pub use rng::SimRng;
pub use stream::{Histogram, MinerAccumulator};
pub use summary::Summary;
