//! The standard normal distribution: CDF and survival function.
//!
//! §5.1.3 of the paper approximates the binomial tail by
//! `Φ((x - yθ₀) / sqrt(yθ₀(1-θ₀)))` for large `y`; this module supplies Φ
//! with ~1e-15 absolute accuracy via the complementary error function.

/// Complementary error function, via the rational Chebyshev approximation of
/// W. J. Cody (1969), absolute error below 1e-15 across the real line.
pub fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    
    if ax < 0.5 {
        1.0 - erf_series(x)
    } else {
        // erfc(ax) = exp(-ax^2) * R(ax)
        let r = if ax < 4.0 { erfc_mid(ax) } else { erfc_far(ax) };
        let v = (-ax * ax).exp() * r;
        if x < 0.0 {
            return 2.0 - v;
        }
        v
    }
}

/// Error function.
pub fn erf(x: f64) -> f64 {
    if x.abs() < 0.5 {
        erf_series(x)
    } else {
        1.0 - erfc(x)
    }
}

// erf on |x| < 0.5 via its Maclaurin-like rational approximation.
fn erf_series(x: f64) -> f64 {
    const A: [f64; 5] = [
        3.209_377_589_138_469_4e3,
        3.774_852_376_853_02e2,
        1.138_641_541_510_501_6e2,
        3.161_123_743_870_565_6,
        1.857_777_061_846_031_5e-1,
    ];
    const B: [f64; 4] = [
        2.844_236_833_439_171e3,
        1.282_616_526_077_372_3e3,
        2.440_246_379_344_441_6e2,
        2.360_129_095_234_412_2e1,
    ];
    let z = x * x;
    let num = ((((A[4] * z + A[3]) * z + A[2]) * z + A[1]) * z) + A[0];
    let den = ((((z + B[3]) * z + B[2]) * z + B[1]) * z) + B[0];
    x * num / den
}

// exp(x^2)*erfc(x) on 0.5 <= x < 4.
fn erfc_mid(x: f64) -> f64 {
    const P: [f64; 9] = [
        1.230_339_354_797_997_2e3,
        2.051_078_377_826_071_6e3,
        1.712_047_612_634_070_7e3,
        8.819_522_212_417_69e2,
        2.986_351_381_974_001e2,
        6.611_919_063_714_163e1,
        8.883_149_794_388_375,
        5.641_884_969_886_701e-1,
        2.153_115_354_744_038_3e-8,
    ];
    const Q: [f64; 8] = [
        1.230_339_354_803_749_5e3,
        3.439_367_674_143_721_6e3,
        4.362_619_090_143_247e3,
        3.290_799_235_733_459_7e3,
        1.621_389_574_566_690_3e3,
        5.371_811_018_620_099e2,
        1.176_939_508_913_124_6e2,
        1.574_492_611_070_983_3e1,
    ];
    let num = ((((((((P[8] * x + P[7]) * x + P[6]) * x + P[5]) * x + P[4]) * x + P[3]) * x
        + P[2])
        * x
        + P[1])
        * x)
        + P[0];
    let den = ((((((((x + Q[7]) * x + Q[6]) * x + Q[5]) * x + Q[4]) * x + Q[3]) * x + Q[2]) * x
        + Q[1])
        * x)
        + Q[0];
    num / den
}

// exp(x^2)*erfc(x) on x >= 4.
fn erfc_far(x: f64) -> f64 {
    const P: [f64; 6] = [
        -6.587_491_615_298_378e-4,
        -1.608_378_514_874_228e-2,
        -1.257_816_929_786_021_5e-1,
        -3.603_448_999_498_044_4e-1,
        -3.053_266_349_612_323e-1,
        -1.631_538_713_730_209_8e-2,
    ];
    const Q: [f64; 5] = [
        2.335_204_976_268_691_8e-3,
        6.051_834_131_244_132e-2,
        5.279_051_029_514_285e-1,
        1.872_952_849_923_460_4,
        2.568_520_192_289_822,
    ];
    if x > 26.5 {
        return 0.0;
    }
    /// 1 / sqrt(pi)
    const FRAC_1_SQRT_PI: f64 = 0.564_189_583_547_756_3;
    let z = 1.0 / (x * x);
    let num = (((((P[5] * z + P[4]) * z + P[3]) * z + P[2]) * z + P[1]) * z) + P[0];
    let den = (((((z + Q[4]) * z + Q[3]) * z + Q[2]) * z + Q[1]) * z) + Q[0];
    let r = z * num / den;
    (FRAC_1_SQRT_PI + r) / x
}

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Standard normal survival function `1 − Φ(x)`, accurate in the far tail.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x * std::f64::consts::FRAC_1_SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (diff {})", (a - b).abs());
    }

    #[test]
    fn erf_known_values() {
        assert_close(erf(0.0), 0.0, 1e-16);
        assert_close(erf(0.5), 0.520_499_877_813_046_5, 1e-12);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-3.0, -1.0, -0.3, 0.0, 0.3, 1.0, 3.0, 5.0] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn cdf_known_values() {
        assert_close(normal_cdf(0.0), 0.5, 1e-15);
        assert_close(normal_cdf(1.0), 0.841_344_746_068_542_9, 1e-10);
        assert_close(normal_cdf(-1.0), 0.158_655_253_931_457_05, 1e-10);
        assert_close(normal_cdf(1.959_963_984_540_054), 0.975, 1e-9);
        assert_close(normal_cdf(2.326_347_874_040_841), 0.99, 1e-9);
    }

    #[test]
    fn sf_is_symmetric_tail() {
        for x in [0.0, 0.5, 1.0, 2.5, 4.0] {
            assert_close(normal_sf(x), normal_cdf(-x), 1e-13);
        }
    }

    #[test]
    fn far_tail_is_tiny_but_positive() {
        let p = normal_sf(8.0);
        assert!(p > 0.0 && p < 1e-14, "sf(8) = {p}");
        assert_eq!(normal_sf(40.0), 0.0);
    }

    #[test]
    fn monotone_decreasing_sf() {
        let mut prev = 1.0;
        let mut x = -6.0;
        while x <= 6.0 {
            let p = normal_sf(x);
            assert!(p <= prev + 1e-15, "sf not monotone at {x}");
            prev = p;
            x += 0.01;
        }
    }
}
