//! Deterministic fork-join parallelism on `std::thread::scope`.
//!
//! The simulator and auditor must be byte-for-byte reproducible at any
//! worker count, so this layer enforces one discipline everywhere it is
//! used: **work items are independent, and results are joined in input
//! order** regardless of which worker computed them or when it finished.
//! A caller that needs an order-sensitive fold performs it serially over
//! the joined vector — the parallel region only ever computes pure
//! per-item values (the "deterministic join" contract, see DESIGN.md §8).
//!
//! No work-stealing runtime and no new dependencies: workers are scoped
//! threads pulling indices off a shared atomic claim counter, which gives
//! dynamic load balancing for skewed item costs while the index-addressed
//! join keeps the output identical to the serial loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Environment variable overriding the detected worker count (used by the
/// CI dual-run gate to force 1-worker and N-worker runs on the same box).
pub const WORKERS_ENV: &str = "CN_WORKERS";

/// Per-worker timing record from a [`Pool::map_timed`] region.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardTiming {
    /// Number of items this worker claimed.
    pub items: u64,
    /// Wall seconds this worker spent inside the region.
    pub seconds: f64,
}

/// A fixed-width fork-join pool descriptor.
///
/// `Pool` is a plain value (no threads are retained between calls); each
/// `map` opens a `std::thread::scope`, runs, and joins. A pool of width 1
/// never spawns and is exactly the serial loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool sized from `CN_WORKERS` if set (clamped to `1..=64`), else
    /// from [`std::thread::available_parallelism`].
    pub fn auto() -> Pool {
        let detected = std::thread::available_parallelism().map_or(1, |n| n.get());
        let workers = match std::env::var(WORKERS_ENV) {
            Ok(v) => v.trim().parse::<usize>().unwrap_or(detected).clamp(1, 64),
            Err(_) => detected,
        };
        Pool { workers }
    }

    /// A pool of exactly `workers` workers (minimum 1).
    pub fn with_workers(workers: usize) -> Pool {
        Pool { workers: workers.max(1) }
    }

    /// A serial pool (width 1); `map` degenerates to the plain loop.
    pub fn serial() -> Pool {
        Pool { workers: 1 }
    }

    /// The pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item and returns results in **input order**.
    ///
    /// `f` must be a pure function of its item (plus shared read-only
    /// state); the join is index-addressed, so the output is byte-identical
    /// to `items.iter().map(f).collect()` at any worker count.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_timed(items, f).0
    }

    /// [`Pool::map`] plus per-worker shard timings (items claimed + wall
    /// seconds), for the `SimProfile` shard breakdown.
    pub fn map_timed<T, R, F>(&self, items: &[T], f: F) -> (Vec<R>, Vec<ShardTiming>)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let width = self.workers.min(n.max(1));
        if width <= 1 {
            let start = Instant::now();
            let out: Vec<R> = items.iter().map(&f).collect();
            let timing = ShardTiming { items: n as u64, seconds: start.elapsed().as_secs_f64() };
            return (out, vec![timing]);
        }

        let next = AtomicUsize::new(0);
        let mut shards: Vec<(Vec<(usize, R)>, ShardTiming)> = Vec::with_capacity(width);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..width)
                .map(|_| {
                    scope.spawn(|| {
                        let start = Instant::now();
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, f(&items[i])));
                        }
                        let timing = ShardTiming {
                            items: out.len() as u64,
                            seconds: start.elapsed().as_secs_f64(),
                        };
                        (out, timing)
                    })
                })
                .collect();
            for h in handles {
                shards.push(h.join().expect("parwork worker panicked"));
            }
        });

        let mut timings = Vec::with_capacity(width);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (pairs, timing) in shards {
            timings.push(timing);
            for (i, r) in pairs {
                slots[i] = Some(r);
            }
        }
        let out = slots
            .into_iter()
            .map(|s| s.expect("every index claimed exactly once"))
            .collect();
        (out, timings)
    }

    /// Runs `f` once over every item **in place** — the batch-join shape
    /// for fan-outs that mutate disjoint state (one mempool view per item)
    /// instead of returning values.
    ///
    /// Items are claimed off the same atomic counter as [`Pool::map`];
    /// because each index is claimed exactly once, each item's mutex is
    /// locked exactly once and never contended — it exists only to let the
    /// scoped threads share the slice safely without `unsafe`. `f` must
    /// treat items as independent (no cross-item reads or writes); under
    /// that discipline the final state is identical to the serial
    /// `for item in items { f(item) }` at any worker count.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        let n = items.len();
        let width = self.workers.min(n.max(1));
        if width <= 1 {
            for item in items.iter_mut() {
                f(item);
            }
            return;
        }
        let cells: Vec<std::sync::Mutex<&mut T>> =
            items.iter_mut().map(std::sync::Mutex::new).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..width {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut cell = cells[i].lock().expect("uncontended per-item lock");
                    f(&mut cell);
                });
            }
        });
    }

    /// Generates `count` values from an index-addressed constructor, in
    /// index order. Sugar for [`Pool::map`] over `0..count` without
    /// materializing the index vector's contents into item payloads.
    pub fn build<R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.build_timed(count, f).0
    }

    /// [`Pool::build`] plus per-worker shard timings.
    pub fn build_timed<R, F>(&self, count: usize, f: F) -> (Vec<R>, Vec<ShardTiming>)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let idx: Vec<usize> = (0..count).collect();
        self.map_timed(&idx, |&i| f(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for w in [1, 2, 3, 8] {
            let out = Pool::with_workers(w).map(&items, |&x| x * 3 + 1);
            let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(out, expect, "workers={w}");
        }
    }

    #[test]
    fn map_matches_serial_for_skewed_costs() {
        let items: Vec<usize> = (0..64).collect();
        let work = |&i: &usize| {
            // Skew: later items spin longer, so claim order != finish order.
            let mut acc = i as u64;
            for k in 0..(i * 500) as u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        };
        let serial = Pool::serial().map(&items, work);
        let parallel = Pool::with_workers(7).map(&items, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn timings_cover_all_items() {
        let items: Vec<u32> = (0..100).collect();
        let (_, shards) = Pool::with_workers(4).map_timed(&items, |&x| x + 1);
        assert!(shards.len() <= 4 && !shards.is_empty());
        let claimed: u64 = shards.iter().map(|s| s.items).sum();
        assert_eq!(claimed, 100);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: [u8; 0] = [];
        assert!(Pool::with_workers(8).map(&empty, |&b| b).is_empty());
        assert_eq!(Pool::with_workers(8).map(&[7u8], |&b| b * 2), vec![14]);
    }

    #[test]
    fn build_is_index_order() {
        let out = Pool::with_workers(5).build(33, |i| i * i);
        let expect: Vec<usize> = (0..33).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn width_clamps_to_item_count() {
        // More workers than items must not deadlock or drop items.
        let out = Pool::with_workers(16).map(&[1u8, 2], |&b| b);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        for w in [1, 2, 3, 8] {
            let mut items: Vec<u64> = (0..257).collect();
            Pool::with_workers(w).for_each_mut(&mut items, |x| *x = *x * 3 + 1);
            let expect: Vec<u64> = (0..257).map(|x| x * 3 + 1).collect();
            assert_eq!(items, expect, "workers={w}");
        }
    }

    #[test]
    fn for_each_mut_handles_empty_and_skew() {
        let mut empty: Vec<u8> = Vec::new();
        Pool::with_workers(8).for_each_mut(&mut empty, |_| unreachable!());
        let mut items: Vec<(usize, u64)> = (0..64).map(|i| (i, 0)).collect();
        Pool::with_workers(7).for_each_mut(&mut items, |(i, acc)| {
            for k in 0..(*i * 500) as u64 {
                *acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
        });
        let mut expect: Vec<(usize, u64)> = (0..64).map(|i| (i, 0)).collect();
        for (i, acc) in &mut expect {
            for k in 0..(*i * 500) as u64 {
                *acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
        }
        assert_eq!(items, expect);
    }
}
