//! Deterministic simulation RNG.
//!
//! The simulator must be byte-for-byte reproducible across runs and library
//! upgrades, so instead of depending on `rand`'s unspecified `StdRng`
//! algorithm we implement xoshiro256++ (Blackman & Vigna, 2019) with a
//! SplitMix64 seeder, and plug it into the `rand` ecosystem by implementing
//! the infallible side of [`rand::TryRng`] (which supplies [`rand::Rng`]
//! through rand's blanket impl).

use rand::TryRng;
use std::convert::Infallible;

/// A seedable, deterministic xoshiro256++ generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s }
    }

    /// Derives an independent child generator for a named subsystem.
    ///
    /// Giving each subsystem (arrivals, mining, topology…) its own stream
    /// keeps event schedules stable when one subsystem changes how much
    /// randomness it consumes.
    pub fn fork(&self, label: &str) -> SimRng {
        // Mix the label into the current state without advancing self.
        let mut acc = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for &b in label.as_bytes() {
            acc ^= b as u64;
            acc = acc.wrapping_mul(0x100_0000_01b3);
        }
        SimRng::seed_from_u64(self.s[0] ^ acc.rotate_left(17))
    }

    /// Derives an independent child generator for item `index` of a named
    /// family, without advancing `self`.
    ///
    /// This is the sharding primitive: giving transaction *i* the stream
    /// `fork_indexed("user-tx", i)` makes its draws a pure function of
    /// `(parent seed, label, i)`, so a worker pool can pre-generate items
    /// in any order — or any batch size — and still produce byte-identical
    /// values to the serial loop.
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        let mut acc = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for &b in label.as_bytes() {
            acc ^= b as u64;
            acc = acc.wrapping_mul(0x100_0000_01b3);
        }
        for &b in index.to_le_bytes().iter() {
            acc ^= b as u64;
            acc = acc.wrapping_mul(0x100_0000_01b3);
        }
        SimRng::seed_from_u64(self.s[0] ^ acc.rotate_left(17))
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift method
    /// (unbiased).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_raw();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range {lo}..={hi}");
        lo + self.next_below(hi - lo + 1)
    }

    /// Bernoulli draw with success probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_below(slice.len() as u64) as usize])
        }
    }
}

impl TryRng for SimRng {
    type Error = Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok((self.next_raw() >> 32) as u32)
    }

    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.next_raw())
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_raw().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let matches = (0..100).filter(|_| a.next_raw() == b.next_raw()).count();
        assert!(matches < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn next_below_unbiased_small_bound() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.next_below(3) as usize] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 600, "counts {counts:?}");
        }
    }

    #[test]
    fn next_range_inclusive() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let v = rng.next_range(5, 7);
            assert!((5..=7).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 7;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn fork_streams_are_independent_and_stable() {
        let root = SimRng::seed_from_u64(99);
        let mut a1 = root.fork("arrivals");
        let mut a2 = root.fork("arrivals");
        let mut m = root.fork("mining");
        assert_eq!(a1.next_raw(), a2.next_raw());
        // Streams with different labels should differ immediately.
        let mut a3 = root.fork("arrivals");
        assert_ne!(a3.next_raw(), m.next_raw());
    }

    #[test]
    fn indexed_forks_are_stable_and_distinct() {
        let root = SimRng::seed_from_u64(99);
        let mut a = root.fork_indexed("user-tx", 5);
        let mut b = root.fork_indexed("user-tx", 5);
        assert_eq!(a.next_raw(), b.next_raw());
        // Neighbouring indices, other labels, and the plain fork all differ.
        let mut c = root.fork_indexed("user-tx", 6);
        let mut d = root.fork_indexed("self-tx", 5);
        let mut e = root.fork("user-tx");
        let fresh = root.fork_indexed("user-tx", 5).next_raw();
        assert_ne!(fresh, c.next_raw());
        assert_ne!(fresh, d.next_raw());
        assert_ne!(fresh, e.next_raw());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn rand_trait_fill_bytes_fills_everything() {
        use rand::Rng;
        let mut rng = SimRng::seed_from_u64(13);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let _ = rng.next_u32();
        let _ = rng.next_u64();
    }

    #[test]
    fn choose_handles_empty() {
        let mut rng = SimRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}
