//! Mergeable streaming summaries for the online auditor.
//!
//! Two building blocks back `cn_core::streaming`:
//!
//! * [`Histogram`] — a fixed-precision, bounded-memory quantile sketch.
//!   State is a vector of `u64` bucket counts plus exact min/max/count/sum,
//!   so `merge` is field-wise addition and therefore **exactly** associative
//!   and commutative (integer arithmetic; the f64 `sum` is the only field
//!   with rounding, and it is never used for quantiles).
//! * [`MinerAccumulator`] — the per-miner rolling tally of blocks,
//!   transactions, PPE/SPPE components and pair-violation counts. All
//!   count fields are integers (exact merge); the PPE/SPPE components are
//!   f64 sums, where merge reassociates the additions.
//!
//! # Merge laws and error bounds
//!
//! For every integer field `f`: `merge(a, b).f == a.f + b.f` exactly, so
//! merge is associative, commutative, and agrees bit-for-bit with pushing
//! all elements into a single accumulator in any order.
//!
//! For f64 sum fields, `merge` computes `a.sum + b.sum`, which reassociates
//! the element-wise additions. IEEE-754 addition is commutative but not
//! associative, so the merged sum may differ from the sequential sum by
//! accumulated rounding: for `n` elements bounded by `M`, the difference is
//! at most `n · ε · n·M` with `ε = f64::EPSILON ≈ 2.2e-16` (standard
//! forward-error bound for recursive summation). The property tests in
//! `crates/stats/tests/stream_algebra.rs` check integer fields with
//! `assert_eq!` and f64 fields against this relative bound.
//!
//! For [`Histogram::quantile`], the returned value is the lower edge of the
//! bucket containing the requested rank, clamped into `[min, max]`. The
//! error is therefore at most one bucket width for in-range samples; samples
//! below `lo` or above `hi` land in the underflow/overflow buckets, where
//! the answer degrades to the exact observed `min`/`max` respectively.

use serde::{Deserialize, Serialize};

/// Fixed-precision streaming histogram over `[lo, hi)` with
/// underflow/overflow buckets and exact extrema.
///
/// Memory is `O(buckets)` regardless of how many samples are pushed, and
/// two sketches with identical geometry merge exactly (integer bucket
/// counts add field-wise).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    /// In-range bucket counts; index 0 covers `[lo, lo + width)`.
    counts: Vec<u64>,
    /// Samples strictly below `lo`.
    underflow: u64,
    /// Samples at or above `hi`.
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over `[lo, hi)` with `buckets` equal-width buckets.
    ///
    /// # Panics
    /// Panics when `buckets == 0`, when `lo >= hi`, or when either bound is
    /// non-finite — all indicate a caller bug, not unusual data.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(lo.is_finite() && hi.is_finite(), "histogram bounds must be finite");
        assert!(lo < hi, "histogram range [{lo}, {hi}) is empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket width; the worst-case quantile error for in-range samples.
    pub fn bucket_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Record one sample. Non-finite samples are ignored (counted nowhere)
    /// so a stray NaN cannot poison the extrema.
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((value - self.lo) / self.bucket_width()) as usize;
            // Rounding at the top edge can land exactly on len(); clamp.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another sketch into this one. Both must share geometry.
    ///
    /// # Panics
    /// Panics when the two sketches disagree on `[lo, hi)` or bucket count.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "histogram merge requires identical geometry"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples, or `None` before the first push.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact minimum sample, or `None` before the first push.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum sample, or `None` before the first push.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate `q`-quantile (`q ∈ [0, 1]`), or `None` before the first
    /// push. Answers are the lower edge of the bucket holding the rank
    /// `ceil(q·n)` sample, clamped into the exact `[min, max]` envelope;
    /// see the module docs for the error bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(self.min);
        }
        let width = self.bucket_width();
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                let edge = self.lo + i as f64 * width;
                return Some(edge.clamp(self.min, self.max));
            }
        }
        // Rank falls in the overflow bucket.
        Some(self.max)
    }
}

/// Per-miner rolling tally: block/transaction counts, PPE/SPPE components,
/// and windowed pair-violation counts.
///
/// The merge law is field-wise addition (min for nothing, no max fields):
/// exact for the integer counts, reassociating for the f64 component sums
/// (see module docs for the bound). `merge(a, b)` therefore equals pushing
/// b's underlying elements into `a` — exactly for counts, to within
/// rounding for the f64 sums.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MinerAccumulator {
    /// Blocks attributed to the miner.
    pub blocks: u64,
    /// Body (non-coinbase) transactions confirmed by the miner.
    pub txs: u64,
    /// Sum of per-block PPE values (percent).
    pub ppe_sum: f64,
    /// Number of blocks contributing to `ppe_sum`.
    pub ppe_count: u64,
    /// Sum of per-transaction signed PPE values (percent).
    pub sppe_sum: f64,
    /// Number of transactions contributing to `sppe_sum`.
    pub sppe_count: u64,
    /// Transactions whose SPPE meets the dark-fee suspicion threshold.
    pub sppe_hot: u64,
    /// Ordering-norm violation pairs charged to the miner.
    pub pair_violating: u64,
    /// Candidate pairs examined when charging violations.
    pub pair_candidates: u64,
}

impl MinerAccumulator {
    /// Record one block containing `txs` body transactions, with its PPE
    /// (when defined — blocks with no non-CPFP transactions have none).
    pub fn push_block(&mut self, txs: u64, ppe: Option<f64>) {
        self.blocks += 1;
        self.txs += txs;
        if let Some(p) = ppe {
            self.ppe_sum += p;
            self.ppe_count += 1;
        }
    }

    /// Record one transaction's signed PPE; `hot` marks it as meeting the
    /// dark-fee suspicion threshold.
    pub fn push_sppe(&mut self, sppe: f64, hot: bool) {
        self.sppe_sum += sppe;
        self.sppe_count += 1;
        if hot {
            self.sppe_hot += 1;
        }
    }

    /// Record pair-violation counts charged to this miner.
    pub fn push_pairs(&mut self, violating: u64, candidates: u64) {
        self.pair_violating += violating;
        self.pair_candidates += candidates;
    }

    /// Fold another accumulator into this one (field-wise addition).
    pub fn merge(&mut self, other: &MinerAccumulator) {
        self.blocks += other.blocks;
        self.txs += other.txs;
        self.ppe_sum += other.ppe_sum;
        self.ppe_count += other.ppe_count;
        self.sppe_sum += other.sppe_sum;
        self.sppe_count += other.sppe_count;
        self.sppe_hot += other.sppe_hot;
        self.pair_violating += other.pair_violating;
        self.pair_candidates += other.pair_candidates;
    }

    /// Mean per-block PPE, or `None` when no block had a defined PPE.
    pub fn mean_ppe(&self) -> Option<f64> {
        (self.ppe_count > 0).then(|| self.ppe_sum / self.ppe_count as f64)
    }

    /// Mean per-transaction SPPE, or `None` before the first transaction.
    pub fn mean_sppe(&self) -> Option<f64> {
        (self.sppe_count > 0).then(|| self.sppe_sum / self.sppe_count as f64)
    }

    /// Fraction of charged pairs that violate the norm, or `None` when no
    /// candidate pairs have been examined.
    pub fn violation_fraction(&self) -> Option<f64> {
        (self.pair_candidates > 0).then(|| self.pair_violating as f64 / self.pair_candidates as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_within_one_bucket() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.push(i as f64 / 10.0);
        }
        let width = h.bucket_width();
        for (q, exact) in [(0.1, 10.0), (0.5, 50.0), (0.9, 90.0)] {
            let approx = h.quantile(q).unwrap();
            assert!(
                (approx - exact).abs() <= width + 1e-9,
                "q={q}: {approx} vs {exact}"
            );
        }
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.max(), Some(99.9));
    }

    #[test]
    fn histogram_under_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-5.0);
        h.push(15.0);
        h.push(5.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), Some(-5.0));
        assert_eq!(h.quantile(1.0), Some(15.0));
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(f64::NAN);
        h.push(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_merge_matches_sequential_exactly() {
        let samples: Vec<f64> = (0..500).map(|i| (i * 7 % 97) as f64).collect();
        let mut whole = Histogram::new(0.0, 100.0, 32);
        for &s in &samples {
            whole.push(s);
        }
        let mut left = Histogram::new(0.0, 100.0, 32);
        let mut right = Histogram::new(0.0, 100.0, 32);
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.push(s);
            } else {
                right.push(s);
            }
        }
        left.merge(&right);
        // Integer state merges exactly; only `sum` may differ by rounding
        // (here it doesn't, the samples are small integers).
        assert_eq!(whole, left);
    }

    #[test]
    #[should_panic(expected = "identical geometry")]
    fn histogram_merge_geometry_mismatch_panics() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let b = Histogram::new(0.0, 1.0, 8);
        a.merge(&b);
    }

    #[test]
    fn accumulator_merge_is_fieldwise() {
        let mut a = MinerAccumulator::default();
        a.push_block(10, Some(12.5));
        a.push_sppe(40.0, false);
        let mut b = MinerAccumulator::default();
        b.push_block(5, None);
        b.push_sppe(95.0, true);
        b.push_pairs(3, 17);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.blocks, 2);
        assert_eq!(merged.txs, 15);
        assert_eq!(merged.ppe_count, 1);
        assert_eq!(merged.sppe_count, 2);
        assert_eq!(merged.sppe_hot, 1);
        assert_eq!(merged.pair_violating, 3);
        assert_eq!(merged.pair_candidates, 17);
        assert_eq!(merged.mean_ppe(), Some(12.5));
        assert_eq!(merged.mean_sppe(), Some((40.0 + 95.0) / 2.0));
        assert_eq!(merged.violation_fraction(), Some(3.0 / 17.0));
    }
}
