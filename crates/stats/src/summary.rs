//! Five-number-plus summaries, matching the paper's Table 5 columns
//! (`mean std min 25-perc median 75-perc max`).

use crate::ecdf::Ecdf;
use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n = 1).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary, ignoring NaNs.
    ///
    /// # Panics
    /// Panics when the NaN-filtered sample is empty.
    pub fn of(values: &[f64]) -> Summary {
        let ecdf = Ecdf::new(values.to_vec());
        let n = ecdf.len();
        let mean = ecdf.mean();
        let var = if n > 1 {
            ecdf.values().iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: ecdf.min(),
            p25: ecdf.quantile(0.25),
            median: ecdf.quantile(0.5),
            p75: ecdf.quantile(0.75),
            max: ecdf.max(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.2} std={:.2} min={:.2} p25={:.2} median={:.2} p75={:.2} max={:.2}",
            self.n, self.mean, self.std, self.min, self.p25, self.median, self.p75, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std with n-1: sqrt(32/7)
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.median, 3.5);
    }

    #[test]
    fn nan_ignored() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_stable() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("mean=2.00"));
    }
}
