//! Accumulator-algebra property tests for the streaming summaries.
//!
//! The merge laws documented in `cn_stats::stream`:
//! * integer state merges **exactly** — associative, commutative, and equal
//!   to pushing every element into one accumulator in any split;
//! * f64 sums reassociate under merge, so they are compared against the
//!   documented recursive-summation rounding bound rather than bit-for-bit;
//! * histogram quantiles depend only on integer state, so they must agree
//!   exactly across any merge tree, and must sit within one bucket width of
//!   the exact sorted quantile for in-range samples.

use cn_stats::{Histogram, MinerAccumulator};
use proptest::prelude::*;

/// One accumulator event: (kind, magnitude, flag).
type Event = (u8, u64, bool);

fn apply(acc: &mut MinerAccumulator, &(kind, v, flag): &Event) {
    match kind % 3 {
        0 => acc.push_block(v % 50, flag.then_some(v as f64 / 10.0)),
        1 => acc.push_sppe(v as f64 / 5.0 - 100.0, flag),
        _ => acc.push_pairs(v % 20, v % 20 + v % 50),
    }
}

fn fold(events: &[Event]) -> MinerAccumulator {
    let mut acc = MinerAccumulator::default();
    for e in events {
        apply(&mut acc, e);
    }
    acc
}

/// Integer fields must match exactly; f64 sums within the documented
/// recursive-summation bound (relative, scaled by element count).
fn assert_law(a: &MinerAccumulator, b: &MinerAccumulator, n: usize) {
    assert_eq!(a.blocks, b.blocks);
    assert_eq!(a.txs, b.txs);
    assert_eq!(a.ppe_count, b.ppe_count);
    assert_eq!(a.sppe_count, b.sppe_count);
    assert_eq!(a.sppe_hot, b.sppe_hot);
    assert_eq!(a.pair_violating, b.pair_violating);
    assert_eq!(a.pair_candidates, b.pair_candidates);
    let tol = |x: f64, y: f64| {
        let scale = x.abs().max(y.abs()).max(1.0);
        (x - y).abs() <= n as f64 * f64::EPSILON * scale
    };
    assert!(tol(a.ppe_sum, b.ppe_sum), "{} vs {}", a.ppe_sum, b.ppe_sum);
    assert!(tol(a.sppe_sum, b.sppe_sum), "{} vs {}", a.sppe_sum, b.sppe_sum);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) equals pushing all elements sequentially, for every
    /// split point of the event stream.
    #[test]
    fn accumulator_merge_commutes_with_pushes(
        events in proptest::collection::vec((0u8..3, 0u64..1_000, any::<bool>()), 0..60),
        cut in 0usize..61,
    ) {
        let cut = cut.min(events.len());
        let whole = fold(&events);
        let mut left = fold(&events[..cut]);
        let right = fold(&events[cut..]);
        left.merge(&right);
        assert_law(&left, &whole, events.len());
    }

    /// merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), exactly on
    /// integer state, within rounding on the component sums. It is also
    /// commutative bit-for-bit (IEEE-754 addition commutes).
    #[test]
    fn accumulator_merge_associative_commutative(
        events in proptest::collection::vec((0u8..3, 0u64..1_000, any::<bool>()), 0..60),
        c1 in 0usize..61,
        c2 in 0usize..61,
    ) {
        let (c1, c2) = (c1.min(events.len()), c2.min(events.len()));
        let (lo, hi) = (c1.min(c2), c1.max(c2));
        let a = fold(&events[..lo]);
        let b = fold(&events[lo..hi]);
        let c = fold(&events[hi..]);
        let mut left_assoc = a.clone();
        left_assoc.merge(&b);
        left_assoc.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right_assoc = a.clone();
        right_assoc.merge(&bc);
        assert_law(&left_assoc, &right_assoc, events.len());
        // Commutativity is exact: x + y == y + x for f64 too.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    /// Histogram quantiles depend only on exactly-merging integer state:
    /// any merge tree must answer identically, and within one bucket width
    /// of the exact sorted quantile for in-range data.
    #[test]
    fn histogram_merge_tree_invariant_quantiles(
        raw in proptest::collection::vec(0u64..100_000, 1..200),
        cut in 0usize..200,
    ) {
        let samples: Vec<f64> = raw.iter().map(|&v| v as f64 / 1_000.0).collect();
        let cut = cut.min(samples.len());
        let mk = || Histogram::new(0.0, 100.0, 64);
        let mut whole = mk();
        for &s in &samples {
            whole.push(s);
        }
        let mut left = mk();
        for &s in &samples[..cut] {
            left.push(s);
        }
        let mut right = mk();
        for &s in &samples[cut..] {
            right.push(s);
        }
        left.merge(&right);
        assert_eq!(whole.count(), left.count());
        assert_eq!(whole.min(), left.min());
        assert_eq!(whole.max(), left.max());
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let merged_q = left.quantile(q);
            assert_eq!(whole.quantile(q), merged_q, "q = {q}");
            // Documented error bound: one bucket width for in-range samples.
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
            let exact = sorted[rank.min(sorted.len() - 1)];
            let approx = merged_q.unwrap();
            assert!(
                (approx - exact).abs() <= whole.bucket_width() + 1e-9,
                "q = {q}: approx {approx} vs exact {exact}"
            );
        }
    }
}
