//! Reproduce the paper's Table 2 pipeline on the dataset-𝒞 scenario:
//! find every pool's self-interest transactions by UTXO replay, run the
//! binomial acceleration test for every (owner, miner) pair, and report
//! the significant ones — including the ViaBTC collusion.
//!
//! ```text
//! cargo run --release --example audit_self_interest
//! ```

use chain_neutrality::audit::prioritization::windowed_prioritization;
use chain_neutrality::audit::self_interest::find_self_interest_transactions;
use chain_neutrality::prelude::*;

fn main() {
    println!("simulating dataset C (quick scale)...");
    let out = World::new(dataset_c(Scale::Quick)).run();
    let index = ChainIndex::build(&out.chain);
    let attribution = attribute(&index);
    let self_map = find_self_interest_transactions(&out.chain, &attribution);

    println!(
        "{} blocks; {} pools attributed; {} pool-touching txs flagged\n",
        index.len(),
        attribution.pools.len(),
        self_map.total_flagged()
    );

    println!("{:<18} {:<18} {:>7} {:>5} {:>5} {:>12} {:>9}", "transactions of", "miner m", "theta0", "x", "y", "p(accel)", "SPPE");
    for owner in attribution.top(12) {
        let Some(c_txids) = self_map.of(&owner.name) else { continue };
        if c_txids.len() < 5 {
            continue;
        }
        for miner in attribution.top(10) {
            let theta0 = attribution.hash_rate(&miner.name).unwrap_or(0.0);
            let test = differential_prioritization(&index, c_txids, &miner.name, theta0);
            if !test.accelerates_at(0.01) {
                continue;
            }
            let sppe = sppe_for_miner(&index, c_txids, &miner.name).unwrap_or(0.0);
            println!(
                "{:<18} {:<18} {:>7.4} {:>5} {:>5} {:>12.2e} {:>8.1}%",
                owner.name, miner.name, theta0, test.x, test.y, test.p_accelerate, sppe
            );
            // Cross-check with the hash-rate-drift-robust variant (§5.1.3).
            if let Some(w) = windowed_prioritization(&index, c_txids, &miner.name, 4) {
                println!(
                    "{:<18} {:<18} (windowed Fisher: p(accel) = {:.2e})",
                    "", "", w.p_accelerate
                );
            }
        }
    }
    println!("\n(expected at full scale: F2Pool, ViaBTC, 1THash & 58Coin and SlushPool");
    println!(" self-accelerate; ViaBTC also accelerates its partners' transactions.)");
}
