//! Congestion and fees (§4.1): how the Mempool backlog drives user
//! bidding and commit delays — Figures 3, 4 and 5 in miniature.
//!
//! ```text
//! cargo run --release --example congestion_study
//! ```

use chain_neutrality::audit::congestion::{
    congested_fraction, fee_rates_by_congestion, size_series,
};
use chain_neutrality::audit::delay::{
    commit_delays, delays_by_fee_band, first_seen_times, FeeBand,
};
use chain_neutrality::prelude::*;

fn main() {
    println!("simulating dataset A (quick scale)...");
    let out = World::new(dataset_a(Scale::Quick)).run();
    let index = ChainIndex::build(&out.chain);
    let capacity = out.scenario.params.max_block_vsize();

    // Backlog over time.
    let series = size_series(&out.snapshots);
    println!(
        "\nMempool backlog: {} snapshots, congested {:.1}% of the time (paper: ~75%)",
        series.len(),
        100.0 * congested_fraction(&out.snapshots, capacity)
    );
    let peak = series.iter().map(|(_, v)| *v).max().unwrap_or(0);
    println!("peak backlog: {:.1}x block capacity", peak as f64 / capacity as f64);

    // Do users bid more when it is crowded?
    println!("\nfee rates by congestion level at issue time:");
    let bins = fee_rates_by_congestion(&out.snapshots, capacity);
    for (i, label) in ["none (<1x)", "low (1-2x)", "mid (2-4x)", "high (>4x)"].iter().enumerate() {
        if bins[i].is_empty() {
            continue;
        }
        let e = Ecdf::new(bins[i].clone());
        println!("  {label:<12} n={:<6} median {:.2e} BTC/KB", e.len(), e.quantile(0.5));
    }

    // Does bidding more help? (Figure 5.)
    let first = first_seen_times(&out.snapshots);
    let records = commit_delays(&index, &first);
    let by_band = delays_by_fee_band(&records);
    println!("\ncommit delays by fee band:");
    for (band, label) in [
        (FeeBand::Low, "low    (<1e-4 BTC/KB)"),
        (FeeBand::High, "high   [1e-4, 1e-3)"),
        (FeeBand::Exorbitant, "exorb. (>=1e-3)"),
    ] {
        let Some(delays) = by_band.get(&band) else { continue };
        if delays.is_empty() {
            continue;
        }
        let e = Ecdf::new(delays.iter().map(|&d| d as f64).collect());
        println!(
            "  {label:<24} n={:<6} next-block {:.1}%  >=3 blocks {:.1}%",
            e.len(),
            100.0 * e.eval(1.0),
            100.0 * (1.0 - e.eval(2.0))
        );
    }
    println!("\n(the paper's takeaway: fees rise with congestion, and paying more works)");
}
