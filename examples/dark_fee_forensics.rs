//! Dark-fee forensics (§5.4): price acceleration like a pool would,
//! detect accelerated transactions from on-chain placement alone (SPPE),
//! and score the detector against ground truth.
//!
//! ```text
//! cargo run --release --example dark_fee_forensics
//! ```

use chain_neutrality::audit::darkfee::{score_detector, sppe_threshold_table};
use chain_neutrality::miner::acceleration::fee_multiple;
use chain_neutrality::prelude::*;

fn main() {
    // A compact world where one pool sells dark-fee acceleration.
    let mut scenario = Scenario::base("dark-fee", 1337);
    scenario.duration = 4 * 3_600;
    scenario.params.max_block_weight = 400_000;
    scenario.congestion = chain_neutrality::sim::congestion::CongestionProfile::flat(0.6);
    scenario.pools = vec![
        PoolConfig::honest("BigPool", 0.5, 2),
        PoolConfig::honest("Accelerator", 0.3, 1)
            .with_behavior(PoolBehavior::DarkFee { premium: 1.5 }),
        PoolConfig::honest("SmallPool", 0.2, 1),
    ];
    scenario.acceleration_demand = 0.03;
    println!("simulating a market with a dark-fee acceleration service...");
    let out = World::new(scenario).run();
    let index = ChainIndex::build(&out.chain);

    // How expensive is acceleration? (Figure 14.)
    let service = out.services[1].as_ref().expect("Accelerator sells").lock();
    let snapshot = out
        .snapshots
        .iter()
        .max_by_key(|s| s.total_vsize())
        .expect("snapshots exist");
    let top = snapshot
        .entries
        .iter()
        .map(|e| e.fee_rate())
        .max()
        .unwrap_or(FeeRate::MIN_RELAY);
    let multiples: Vec<f64> = snapshot
        .entries
        .iter()
        .filter_map(|e| fee_multiple(e.fee, service.quote(e.vsize, e.fee, top)))
        .collect();
    if !multiples.is_empty() {
        let s = Summary::of(&multiples);
        println!(
            "quoted dark fees over a congested snapshot ({} txs): median {:.1}x the public fee, mean {:.1}x",
            s.n, s.median, s.mean
        );
    }

    // On-chain detection: sweep SPPE thresholds on the provider's blocks.
    println!("\nSPPE-threshold sweep on Accelerator's blocks (Table 4 method):");
    let oracle = |t: &Txid| out.truth.is_accelerated(t);
    println!("{:>8} {:>8} {:>13} {:>12}", "SPPE >=", "# txs", "# accelerated", "% accel");
    for row in sppe_threshold_table(&index, "Accelerator", &[99.0, 90.0, 50.0, 1.0], &oracle) {
        println!(
            "{:>7.0}% {:>8} {:>13} {:>11.2}%",
            row.threshold,
            row.total,
            row.accelerated,
            100.0 * row.precision()
        );
    }
    let (precision, recall) = score_detector(&index, "Accelerator", 90.0, &oracle);
    println!(
        "\ndetector at SPPE >= 90%: precision {:.1}%, recall {:.1}%",
        100.0 * precision,
        100.0 * recall
    );
    println!("(with 100 kvB blocks the percentile rank tops out below 99%,");
    println!(" so the paper's 99% cutoff maps to ~90% at this scale)");
    println!("orders placed with the service: {}", service.order_count());
    println!("ground-truth accelerated txs:   {}", out.truth.accelerated_txids().len());
}
