//! Quickstart: simulate a small blockchain world, then audit it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chain_neutrality::prelude::*;

fn main() {
    // 1. Describe a world: three pools, one of which selfishly
    //    accelerates transactions touching its own wallets.
    let mut scenario = Scenario::base("quickstart", 42);
    scenario.duration = 16 * 3_600; // sixteen hours of simulated time
    scenario.params.max_block_weight = 400_000; // 100 kvB blocks
    scenario.congestion = chain_neutrality::sim::congestion::CongestionProfile::flat(0.85);
    scenario.self_interest_rate = 0.01;
    scenario.pools = vec![
        PoolConfig::honest("Honest-A", 0.45, 2),
        PoolConfig::honest("Honest-B", 0.35, 1),
        PoolConfig::honest("Greedy", 0.20, 2).with_behavior(PoolBehavior::SelfInterest),
    ];

    // 2. Run it.
    println!("simulating {}s of chain activity...", scenario.duration);
    let out = World::new(scenario).run();
    println!(
        "chain: {} blocks, {} transactions, {} snapshots recorded",
        out.chain.height(),
        out.chain.body_tx_count(),
        out.snapshots.len()
    );

    // 3. Audit: attribute blocks to pools from coinbase markers.
    let index = ChainIndex::build(&out.chain);
    let attribution = attribute(&index);
    println!("\npool footprint (from coinbase markers):");
    for pool in attribution.top(10) {
        println!(
            "  {:<10} {:>4} blocks ({:>5.2}%), {} txs",
            pool.name,
            pool.blocks,
            100.0 * pool.blocks as f64 / attribution.total_blocks() as f64,
            pool.transactions
        );
    }

    // 4. Check whether each pool's ordering deviates from the fee-rate
    //    norm (Position Prediction Error — Figure 7 of the paper).
    let ppes = chain_ppe(&index);
    let ecdf = Ecdf::new(ppes);
    println!(
        "\nPPE over all blocks: mean {:.2}%, median {:.2}%, p80 {:.2}%",
        ecdf.mean(),
        ecdf.quantile(0.5),
        ecdf.quantile(0.8)
    );

    // 5. Run the paper's differential-prioritization test on the greedy
    //    pool's own transactions.
    for name in ["Greedy", "Honest-A"] {
        let c_txids = chain_neutrality::audit::self_interest::self_interest_txids(
            &out.chain, &index, name,
        );
        let theta0 = attribution.hash_rate(name).unwrap_or(0.0);
        let test = differential_prioritization(&index, &c_txids, name, theta0);
        println!(
            "\n{name}: hash rate {:.1}%, mined {} of {} blocks containing its own txs",
            100.0 * theta0,
            test.x,
            test.y
        );
        println!(
            "  acceleration p-value: {:.6} -> {}",
            test.p_accelerate,
            if test.accelerates_at(0.05) {
                "SELF-ACCELERATION SUSPECTED (alpha = 0.05 at this tiny scale;\n   the full dataset-C experiment reaches p < 0.001)"
            } else {
                "no evidence of self-acceleration"
            }
        );
        if let Some(sppe) = sppe_for_miner(&index, &c_txids, name) {
            println!("  mean SPPE in its own blocks: {sppe:.1}%");
        }
    }

    // 6. Or do all of the above in one call.
    let report = audit_chain(
        &out.chain,
        &index,
        AuditConfig { alpha: 0.05, sppe_threshold: 80.0, ..AuditConfig::default() },
    );
    println!("\n--- one-call audit report ---\n{}", report.render());
}
