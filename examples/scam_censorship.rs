//! Scam-payment treatment (§5.3): the paper found *no* differential
//! treatment in the wild. This example shows both sides: a neutral world
//! where the test correctly stays silent, and a censoring world where the
//! deceleration test fires.
//!
//! ```text
//! cargo run --release --example scam_censorship
//! ```

use chain_neutrality::prelude::*;
use chain_neutrality::sim::scenario::ScamConfig;

fn run_world(censor: bool) -> (SimOutput, ChainIndex) {
    let mut scenario = Scenario::base(if censor { "censoring" } else { "neutral" }, 2020);
    scenario.duration = 4 * 3_600;
    scenario.params.max_block_weight = 400_000;
    scenario.congestion = chain_neutrality::sim::congestion::CongestionProfile::flat(0.55);
    scenario.pools = vec![
        PoolConfig::honest("Moralist", 0.45, 2),
        PoolConfig::honest("Neutral-1", 0.30, 1),
        PoolConfig::honest("Neutral-2", 0.25, 1),
    ];
    if censor {
        scenario.pools[0] =
            scenario.pools[0].clone().with_behavior(PoolBehavior::CensorScam { exclude: true });
    }
    scenario.scam = Some(ScamConfig {
        window_start: 600,
        window_end: scenario.duration - 600,
        donation_prob: 0.05,
    });
    let out = World::new(scenario).run();
    let index = ChainIndex::build(&out.chain);
    (out, index)
}

fn report(label: &str, out: &SimOutput, index: &ChainIndex) {
    let attribution = attribute(index);
    let scam_txids = out.truth.scam_txids();
    let confirmed = scam_txids.iter().filter(|t| index.locate(t).is_some()).count();
    println!(
        "\n[{label}] scam donations: {} issued, {confirmed} confirmed",
        scam_txids.len()
    );
    println!(
        "{:<12} {:>7} {:>4} {:>4} {:>12} {:>12}",
        "pool", "theta0", "x", "y", "p(accel)", "p(decel)"
    );
    for pool in attribution.top(3) {
        let theta0 = attribution.hash_rate(&pool.name).unwrap_or(0.0);
        let t = differential_prioritization(index, &scam_txids, &pool.name, theta0);
        println!(
            "{:<12} {:>7.3} {:>4} {:>4} {:>12.3e} {:>12.3e}{}",
            pool.name,
            theta0,
            t.x,
            t.y,
            t.p_accelerate,
            t.p_decelerate,
            if t.decelerates_at(0.001) {
                "  <- DECELERATION / CENSORSHIP"
            } else if t.accelerates_at(0.001) {
                "  <- acceleration?"
            } else {
                ""
            }
        );
    }
}

fn main() {
    println!("simulating a neutral world and a censoring world...");
    let (neutral_out, neutral_index) = run_world(false);
    report("neutral miners", &neutral_out, &neutral_index);
    println!("(expected: no p-value below 0.001 — the paper's Table 3 null result)");

    let (censor_out, censor_index) = run_world(true);
    report("Moralist censors scam payments", &censor_out, &censor_index);
    println!("(expected: Moralist's deceleration test fires — it never mines scam txs)");
}
