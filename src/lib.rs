//! # chain-neutrality
//!
//! A research library reproducing *"Selfish & Opaque Transaction Ordering
//! in the Bitcoin Blockchain: The Case for Chain Neutrality"*
//! (Messias et al., ACM IMC 2021): an audit toolkit for transaction-
//! ordering norms in proof-of-work blockchains, together with the full
//! substrate needed to exercise it — a Bitcoin-like chain, a Bitcoin-Core-
//! style Mempool, a `GetBlockTemplate` assembler with misbehaviour
//! policies, a P2P propagation model, and a deterministic discrete-event
//! simulator with calibrated dataset scenarios.
//!
//! The crates re-exported here can also be used individually:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`chain`] | `cn-chain` | transactions, blocks, UTXO set, validation |
//! | [`stats`] | `cn-stats` | binomial tests, Fisher's method, ECDFs, RNG |
//! | [`mempool`] | `cn-mempool` | fee-rate-indexed Mempool with CPFP packages |
//! | [`miner`] | `cn-miner` | GBT templates, policies, acceleration services |
//! | [`net`] | `cn-net` | P2P topology, latency, per-node Mempool views |
//! | [`sim`] | `cn-sim` | discrete-event world with ground truth |
//! | [`audit`] | `cn-core` | PPE/SPPE, violation pairs, differential tests |
//! | [`data`] | `cn-data` | calibrated dataset 𝒜/ℬ/𝒞 scenarios |
//!
//! ## Quickstart
//!
//! ```
//! use chain_neutrality::prelude::*;
//!
//! // Simulate a small world with one self-dealing pool...
//! let mut scenario = Scenario::base("demo", 7);
//! scenario.duration = 45 * 60;
//! scenario.pools[0] = PoolConfig::honest("Cheater", 0.4, 2)
//!     .with_behavior(PoolBehavior::SelfInterest);
//! let out = World::new(scenario).run();
//!
//! // ...and audit it.
//! let index = ChainIndex::build(&out.chain);
//! let attribution = attribute(&index);
//! assert!(attribution.total_blocks() as u64 == out.chain.height());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cn_chain as chain;
pub use cn_core as audit;
pub use cn_data as data;
pub use cn_mempool as mempool;
pub use cn_miner as miner;
pub use cn_net as net;
pub use cn_sim as sim;
pub use cn_stats as stats;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use cn_chain::{
        Address, Amount, Block, BlockHash, Chain, FeeRate, Params, Transaction, TxOut, Txid,
    };
    pub use cn_core::{
        attribute, audit_chain, block_ppe, chain_ppe, differential_prioritization,
        sppe_for_miner, AuditConfig, AuditReport, ChainIndex,
    };
    pub use cn_data::{dataset_a, dataset_b, dataset_c, Scale};
    pub use cn_mempool::{Mempool, MempoolPolicy, MempoolSnapshot};
    pub use cn_miner::{AccelerationService, BlockAssembler, MiningPool, Priority};
    pub use cn_sim::{
        scenario::{PoolBehavior, PoolConfig, Scenario},
        SimOutput, World,
    };
    pub use cn_stats::{binomial_test, Ecdf, SimRng, Summary, Tail};
}
