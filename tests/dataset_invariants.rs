//! Invariants of the calibrated dataset scenarios (quick scale).

use chain_neutrality::audit::congestion::congested_fraction;
use chain_neutrality::prelude::*;
use std::sync::OnceLock;

fn run_a() -> &'static SimOutput {
    static CELL: OnceLock<SimOutput> = OnceLock::new();
    CELL.get_or_init(|| World::new(dataset_a(Scale::Quick)).run())
}

fn run_b() -> &'static SimOutput {
    static CELL: OnceLock<SimOutput> = OnceLock::new();
    CELL.get_or_init(|| World::new(dataset_b(Scale::Quick)).run())
}

fn run_c() -> &'static SimOutput {
    static CELL: OnceLock<SimOutput> = OnceLock::new();
    CELL.get_or_init(|| World::new(dataset_c(Scale::Quick)).run())
}

#[test]
fn dataset_a_shape() {
    let out = run_a();
    let index = ChainIndex::build(&out.chain);
    assert!(out.chain.height() >= 20, "height {}", out.chain.height());
    assert!(out.snapshots.len() > 1_000);
    // CPFP share near Table 1's 26.45 %.
    let cpfp = index.cpfp_fraction();
    assert!((0.15..=0.40).contains(&cpfp), "CPFP fraction {cpfp}");
    // Congested most of the time, per Figure 3.
    let congested = congested_fraction(&out.snapshots, out.scenario.params.max_block_vsize());
    assert!(congested > 0.5, "congested {congested}");
}

#[test]
fn dataset_b_is_more_congested_and_sees_zero_fee_txs() {
    let a = run_a();
    let b = run_b();
    let cap = a.scenario.params.max_block_vsize();
    let ca = congested_fraction(&a.snapshots, cap);
    let cb = congested_fraction(&b.snapshots, cap);
    assert!(cb > ca, "B ({cb}) must be more congested than A ({ca})");
    // The no-floor observer records zero-fee transactions that a default
    // observer would refuse.
    let zero_fee_seen = b
        .snapshots
        .iter()
        .flat_map(|s| s.entries.iter())
        .any(|e| e.fee == Amount::ZERO);
    assert!(zero_fee_seen, "dataset B's observer accepts zero-fee txs");
    let zero_fee_seen_a = a
        .snapshots
        .iter()
        .flat_map(|s| s.entries.iter())
        .any(|e| e.fee == Amount::ZERO);
    assert!(!zero_fee_seen_a, "dataset A's default observer filters them");
}

#[test]
fn dataset_c_injects_all_misbehaviours() {
    let out = run_c();
    // Ground truth must contain each misbehaviour class.
    assert!(!out.truth.accelerated_txids().is_empty(), "dark-fee demand");
    assert!(!out.truth.scam_txids().is_empty(), "scam window donations");
    for pool in ["F2Pool", "ViaBTC", "SlushPool", "1THash & 58Coin", "Poolin"] {
        assert!(
            !out.truth.self_interest_txids(pool).is_empty(),
            "{pool} should have issued self transfers"
        );
    }
    // Five pools sell acceleration.
    let sellers = out.services.iter().filter(|s| s.is_some()).count();
    assert_eq!(sellers, 5);
    // 20-pool roster attributed.
    let index = ChainIndex::build(&out.chain);
    let attribution = attribute(&index);
    assert!(attribution.pools.len() >= 10);
    assert_eq!(attribution.unidentified_blocks, 0);
}

#[test]
fn runs_are_deterministic() {
    let one = World::new(dataset_a(Scale::Quick)).run();
    let two = World::new(dataset_a(Scale::Quick)).run();
    assert_eq!(one.chain.tip_hash(), two.chain.tip_hash());
    assert_eq!(one.chain.height(), two.chain.height());
    assert_eq!(one.block_miners, two.block_miners);
    assert_eq!(one.snapshots.len(), two.snapshots.len());
    // Snapshot streams agree byte-for-byte on a few samples.
    for i in [0usize, one.snapshots.len() / 2, one.snapshots.len() - 1] {
        assert_eq!(one.snapshots[i], two.snapshots[i], "snapshot {i}");
    }
}

#[test]
fn low_fee_transactions_only_mined_by_low_fee_pools() {
    let out = run_b();
    let index = ChainIndex::build(&out.chain);
    // §4.2.3: below-floor txs can only be confirmed by pools that accept
    // them (F2Pool, ViaBTC, BTC.com in dataset B).
    let low_fee_miners: std::collections::HashSet<&str> =
        ["F2Pool", "ViaBTC", "BTC.com"].into();
    for block in index.blocks() {
        for tx in &block.txs {
            if tx.fee_rate() < FeeRate::MIN_RELAY {
                let miner = block.miner.as_deref().expect("marked");
                assert!(
                    low_fee_miners.contains(miner),
                    "below-floor tx {} mined by {miner}",
                    tx.txid
                );
            }
        }
    }
}

#[test]
fn scam_window_timing_respected() {
    let out = run_c();
    let scam_cfg = out.scenario.scam.as_ref().expect("configured");
    for txid in out.truth.scam_txids() {
        let t = out.truth.issue_time(&txid).expect("recorded");
        assert!(
            t >= scam_cfg.window_start && t < scam_cfg.window_end,
            "scam tx issued at {t} outside [{}, {})",
            scam_cfg.window_start,
            scam_cfg.window_end
        );
    }
}
