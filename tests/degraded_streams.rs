//! Property tests for the degraded-data-tolerant audit pipeline: every
//! snapshot-consuming metric must be total (no panics) over streams with
//! random gaps, duplicate txids, empty detail dumps, and truncation, and
//! the coverage score must be monotone in the damage.

use chain_neutrality::audit::congestion::{congested_fraction, size_series, size_series_checked};
use chain_neutrality::audit::coverage::SnapshotCoverage;
use chain_neutrality::audit::delay::{first_seen_times, first_seen_times_checked};
use chain_neutrality::audit::error::AuditError;
use chain_neutrality::audit::pairs::{count_violations_cdq, count_violations_checked, PairObservation};
use chain_neutrality::prelude::*;
use cn_mempool::SnapshotEntry;
use proptest::prelude::*;

/// One random snapshot: detailed with 0..12 entries drawn from a tiny
/// txid alphabet (forcing duplicates across snapshots), or aggregate-only.
fn arb_snapshot() -> impl Strategy<Value = MempoolSnapshot> {
    (
        0u64..50_000,
        any::<bool>(),
        proptest::collection::vec((0u8..24, 0u64..50_000, 1u64..2_000_000, 50u64..5_000, any::<bool>()), 0..12),
        0usize..500,
        0u64..1_000_000,
        0.0f64..=1.0,
        any::<bool>(),
    )
        .prop_map(|(time, detailed, raw, count, vsize, keep, truncate)| {
            if detailed {
                let entries = raw
                    .into_iter()
                    .map(|(id, received, fee, vsize, cpfp)| SnapshotEntry {
                        txid: Txid::from([id; 32]),
                        received,
                        fee: Amount::from_sat(fee),
                        vsize,
                        has_unconfirmed_parent: cpfp,
                    })
                    .collect();
                let snap = MempoolSnapshot::from_entries(time, entries);
                if truncate {
                    snap.truncate_detail(keep)
                } else {
                    snap
                }
            } else {
                MempoolSnapshot::light(time, count, vsize)
            }
        })
}

fn arb_stream() -> impl Strategy<Value = Vec<MempoolSnapshot>> {
    proptest::collection::vec(arb_snapshot(), 0..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn first_seen_is_total_and_consistent(stream in arb_stream()) {
        // Total: no panic on any stream shape.
        let seen = first_seen_times(&stream);
        // Every reported txid really appears in a detailed snapshot, at
        // a time no later than any of its sightings.
        for (txid, t) in &seen {
            let sightings: Vec<u64> = stream
                .iter()
                .filter(|s| s.is_detailed())
                .flat_map(|s| s.entries.iter())
                .filter(|e| e.txid == *txid)
                .map(|e| e.received)
                .collect();
            prop_assert!(!sightings.is_empty());
            prop_assert!(sightings.iter().all(|s| t <= s), "first-seen after a sighting");
        }
        // Checked variant: same answer, or a typed error on hopeless input.
        match first_seen_times_checked(&stream) {
            Ok(checked) => prop_assert_eq!(checked, seen),
            Err(AuditError::EmptySnapshotStream) => prop_assert!(stream.is_empty()),
            Err(AuditError::NoDetailedSnapshots) => {
                prop_assert!(stream.iter().all(|s| !s.is_detailed()));
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn congestion_metrics_are_total(stream in arb_stream(), capacity in 1u64..500_000) {
        let series = size_series(&stream);
        prop_assert_eq!(series.len(), stream.len());
        let frac = congested_fraction(&stream, capacity);
        prop_assert!((0.0..=1.0).contains(&frac), "fraction {frac}");
        match size_series_checked(&stream) {
            Ok(checked) => prop_assert_eq!(checked, series),
            Err(AuditError::EmptySnapshotStream) => prop_assert!(stream.is_empty()),
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn violation_counting_is_total(
        raw in proptest::collection::vec((0u64..2_000, 0u64..100_000, 0u64..60), 0..100),
        epsilon in 0u64..50,
    ) {
        let obs: Vec<PairObservation> = raw
            .into_iter()
            .map(|(t, rate, h)| PairObservation {
                received: t,
                fee_rate: FeeRate::from_sat_per_kvb(rate),
                height: h,
            })
            .collect();
        match count_violations_checked(&obs, epsilon) {
            Ok(stats) => {
                prop_assert!(!obs.is_empty());
                prop_assert_eq!(stats, count_violations_cdq(&obs, epsilon));
                prop_assert!(stats.violating <= stats.candidates);
            }
            Err(AuditError::NoDetailedSnapshots) => prop_assert!(obs.is_empty()),
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn coverage_fractions_bounded_and_monotone(
        stream in arb_stream(),
        expected_windows in 0u64..40,
        expected_detailed in 0u64..40,
    ) {
        // Bounded on arbitrary streams and expectations (including
        // expectations *smaller* than the stream).
        let cov = SnapshotCoverage::assess(&stream, expected_windows, expected_detailed);
        for f in [cov.window_fraction(), cov.detail_fraction(), cov.confidence()] {
            prop_assert!((0.0..=1.0).contains(&f), "fraction {f}");
        }
        // Removing a suffix of windows never raises confidence.
        let mut last = f64::INFINITY;
        for removed in 0..=stream.len() {
            let cut = &stream[..stream.len() - removed];
            let c = SnapshotCoverage::assess(cut, expected_windows, expected_detailed).confidence();
            prop_assert!(c <= last + 1e-12, "confidence rose from {last} to {c}");
            last = c;
        }
    }

    #[test]
    fn truncation_shrinks_and_marks(snap in arb_snapshot(), keep in 0.0f64..=1.0) {
        let cut = snap.truncate_detail(keep);
        prop_assert!(cut.len() <= snap.len());
        prop_assert_eq!(cut.time, snap.time);
        if snap.is_detailed() {
            prop_assert!(cut.is_detailed());
            prop_assert!(cut.is_truncated());
            // Surviving entries are a subset of the original's.
            for e in cut.entries.iter() {
                prop_assert!(snap.entries.contains(e));
            }
        } else {
            // Aggregate snapshots have nothing to truncate.
            prop_assert_eq!(cut.len(), snap.len());
            prop_assert_eq!(cut.is_truncated(), snap.is_truncated());
        }
    }
}
