//! End-to-end pipeline tests: simulate worlds with known misbehaviour and
//! assert the audit toolkit detects exactly it.

use chain_neutrality::audit::darkfee::score_detector;
use chain_neutrality::audit::self_interest::{
    find_self_interest_transactions, self_interest_txids,
};
use chain_neutrality::prelude::*;
use chain_neutrality::sim::congestion::CongestionProfile;

/// A congested three-pool world; `misbehave` controls whether pool
/// "Target" self-accelerates.
fn world(misbehave: bool, seed: u64) -> SimOutput {
    let mut scenario = Scenario::base(if misbehave { "cheat" } else { "fair" }, seed);
    scenario.duration = 20 * 3_600;
    scenario.params.max_block_weight = 400_000;
    scenario.congestion = CongestionProfile::flat(0.95);
    scenario.self_interest_rate = 0.012;
    scenario.pools = vec![
        PoolConfig::honest("Whale", 0.45, 2),
        PoolConfig::honest("Middle", 0.33, 1),
        if misbehave {
            PoolConfig::honest("Target", 0.22, 2).with_behavior(PoolBehavior::SelfInterest)
        } else {
            PoolConfig::honest("Target", 0.22, 2)
        },
    ];
    World::new(scenario).run()
}

#[test]
fn self_acceleration_detected_and_null_respected() {
    let cheating = world(true, 11);
    let index = ChainIndex::build(&cheating.chain);
    let attribution = attribute(&index);
    let c_txids = self_interest_txids(&cheating.chain, &index, "Target");
    assert!(c_txids.len() > 30, "enough self-interest txs: {}", c_txids.len());
    let theta0 = attribution.hash_rate("Target").expect("attributed");
    let test = differential_prioritization(&index, &c_txids, "Target", theta0);
    // The cheater is over-represented among its own transactions' blocks.
    assert!(
        test.p_accelerate < 0.05,
        "cheater must look suspicious: x={} y={} p={}",
        test.x,
        test.y,
        test.p_accelerate
    );
    let sppe = sppe_for_miner(&index, &c_txids, "Target").expect("some own blocks");
    assert!(sppe > 40.0, "accelerated txs ride on top: SPPE = {sppe}");

    // The same test on the same pool in an honest world stays quiet.
    let fair = world(false, 11);
    let index = ChainIndex::build(&fair.chain);
    let attribution = attribute(&index);
    let c_txids = self_interest_txids(&fair.chain, &index, "Target");
    let theta0 = attribution.hash_rate("Target").expect("attributed");
    let test = differential_prioritization(&index, &c_txids, "Target", theta0);
    assert!(
        test.p_accelerate > 0.01,
        "honest pool must not be flagged: p = {}",
        test.p_accelerate
    );
    if let Some(sppe) = sppe_for_miner(&index, &c_txids, "Target") {
        assert!(sppe.abs() < 40.0, "honest SPPE should be modest: {sppe}");
    }
}

#[test]
fn honest_pools_not_flagged_in_cheating_world() {
    let out = world(true, 12);
    let index = ChainIndex::build(&out.chain);
    let attribution = attribute(&index);
    let self_map = find_self_interest_transactions(&out.chain, &attribution);
    for honest in ["Whale", "Middle"] {
        let Some(c_txids) = self_map.of(honest) else { continue };
        let theta0 = attribution.hash_rate(honest).expect("attributed");
        let test = differential_prioritization(&index, c_txids, honest, theta0);
        assert!(
            !test.accelerates_at(0.001),
            "{honest} wrongly flagged: x={} y={} p={}",
            test.x,
            test.y,
            test.p_accelerate
        );
    }
}

#[test]
fn attribution_matches_simulator_ground_truth() {
    let out = world(false, 13);
    let index = ChainIndex::build(&out.chain);
    assert_eq!(index.len(), out.block_miners.len());
    for (height, &miner_idx) in out.block_miners.iter().enumerate() {
        let attributed = index
            .block(height as u64)
            .and_then(|b| b.miner.clone())
            .expect("every simulated block is marked");
        assert_eq!(attributed, out.pool_names[miner_idx], "height {height}");
    }
}

#[test]
fn dark_fee_detector_scores_well() {
    let mut scenario = Scenario::base("darkfee-e2e", 21);
    scenario.duration = 10 * 3_600;
    scenario.params.max_block_weight = 400_000;
    scenario.congestion = CongestionProfile::flat(0.8);
    scenario.acceleration_demand = 0.02;
    scenario.pools = vec![
        PoolConfig::honest("Honest", 0.6, 2),
        PoolConfig::honest("Seller", 0.4, 1).with_behavior(PoolBehavior::DarkFee { premium: 1.5 }),
    ];
    let out = World::new(scenario).run();
    let index = ChainIndex::build(&out.chain);
    assert!(!out.truth.accelerated_txids().is_empty(), "demand existed");
    let oracle = |t: &Txid| out.truth.is_accelerated(t);
    let (precision, recall) = score_detector(&index, "Seller", 80.0, &oracle);
    assert!(precision > 0.7, "precision {precision}");
    assert!(recall > 0.5, "recall {recall}");
    // The honest pool's blocks contain no accelerated-looking placements
    // attributable to dark fees paid to the seller.
    let (precision_honest, _) = score_detector(&index, "Honest", 80.0, &oracle);
    assert!(
        precision_honest < precision,
        "flagging in honest blocks should be weaker ({precision_honest} vs {precision})"
    );
}

#[test]
fn censoring_pool_flagged_by_deceleration_test() {
    let mut scenario = Scenario::base("censor-e2e", 31);
    scenario.duration = 8 * 3_600;
    scenario.params.max_block_weight = 400_000;
    scenario.congestion = CongestionProfile::flat(0.6);
    scenario.scam = Some(chain_neutrality::sim::scenario::ScamConfig {
        window_start: 600,
        window_end: 8 * 3_600 - 600,
        donation_prob: 0.05,
    });
    scenario.pools = vec![
        PoolConfig::honest("Censor", 0.5, 1).with_behavior(PoolBehavior::CensorScam { exclude: true }),
        PoolConfig::honest("Neutral", 0.5, 1),
    ];
    let out = World::new(scenario).run();
    let index = ChainIndex::build(&out.chain);
    let scam = out.truth.scam_txids();
    assert!(!scam.is_empty());
    let test = differential_prioritization(&index, &scam, "Censor", 0.5);
    assert_eq!(test.x, 0, "a hard censor never mines scam payments");
    assert!(test.decelerates_at(0.01), "p = {}", test.p_decelerate);
    let neutral = differential_prioritization(&index, &scam, "Neutral", 0.5);
    assert!(!neutral.decelerates_at(0.001));
}
