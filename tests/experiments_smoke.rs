//! Smoke tests over the experiment harness: every registered id resolves,
//! and the cheap experiments produce sane reports end to end.

use cn_bench::{run_experiment, Lab, ALL_IDS};

#[test]
fn every_id_resolves() {
    let lab = Lab::quick();
    for id in ALL_IDS {
        // Resolution only — running all of them is the binary's job.
        // fig1 is dataset-free, so run it for real.
        if *id == "fig1" {
            let report = run_experiment(id, &lab).expect("registered");
            assert!(report.contains("pre-2016"));
            assert!(report.contains("post-2016"));
        }
    }
    assert!(run_experiment("not-an-id", &lab).is_none());
}

#[test]
fn fig1_shows_the_norm_shift() {
    let lab = Lab::quick();
    let report = run_experiment("fig1", &lab).expect("runs");
    // The era contrast must be stark: extract the two mean PPE lines.
    let pre_line = report.lines().find(|l| l.starts_with("pre-2016")).expect("pre line");
    let post_line = report.lines().find(|l| l.starts_with("post-2016")).expect("post line");
    let mean_of = |line: &str| -> f64 {
        line.split("mean PPE ")
            .nth(1)
            .and_then(|s| s.split('%').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("mean parsable")
    };
    let (pre, post) = (mean_of(pre_line), mean_of(post_line));
    assert!(pre > 20.0, "pre-2016 mean PPE {pre}");
    assert!(post < 1.0, "post-2016 mean PPE {post}");
}

#[test]
fn quick_lab_datasets_feed_cheap_experiments() {
    // One lab, several experiments sharing its simulations: exercises the
    // OnceLock sharing and a representative experiment per dataset.
    let lab = Lab::quick();
    let fig9 = run_experiment("fig9", &lab).expect("runs"); // dataset B
    assert!(fig9.contains("Mempool size over time"));
    assert!(fig9.contains("congested fraction"));
    let fig13 = run_experiment("fig13", &lab).expect("runs"); // dataset C
    assert!(fig13.contains("scam window"));
    let norm3 = run_experiment("norm3", &lab).expect("runs");
    assert!(norm3.contains("below-floor"));
}
