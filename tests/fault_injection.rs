//! Fault-injection integration tests: the fault layer must be bit-inert
//! when disabled, must actually damage observation when enabled, and the
//! audit pipeline must degrade — never panic — on the damaged streams.

use chain_neutrality::audit::congestion::{congested_fraction, size_series, size_series_checked};
use chain_neutrality::audit::coverage::{SnapshotCoverage, StreamExpectation};
use chain_neutrality::audit::delay::{first_seen_times, first_seen_times_checked};
use chain_neutrality::audit::error::AuditError;
use chain_neutrality::audit::pairs::count_violations_checked;
use chain_neutrality::audit::{audit_with_snapshots, AuditConfig, ChainIndex};
use chain_neutrality::net::FaultPlan;
use chain_neutrality::prelude::*;

fn short_scenario(seed: u64) -> Scenario {
    let mut s = Scenario::base("faults-it", seed);
    s.duration = 2 * 3_600;
    s
}

#[test]
fn none_plan_is_bit_inert() {
    // A scenario carrying an explicit FaultPlan::none() must reproduce
    // the default-constructed run exactly: same chain, same snapshot
    // stream, byte for byte in every observable.
    let baseline = World::new(short_scenario(0xBEEF)).run();
    let mut with_plan = short_scenario(0xBEEF);
    with_plan.faults = FaultPlan::none();
    let explicit = World::new(with_plan).run();

    assert_eq!(baseline.chain.tip_hash(), explicit.chain.tip_hash());
    assert_eq!(baseline.chain.height(), explicit.chain.height());
    assert_eq!(baseline.snapshots.len(), explicit.snapshots.len());
    for (a, b) in baseline.snapshots.iter().zip(&explicit.snapshots) {
        assert_eq!(a.time, b.time);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.total_vsize(), b.total_vsize());
        assert_eq!(a.is_detailed(), b.is_detailed());
        assert_eq!(a.entries, b.entries);
    }
    assert_eq!(baseline.orphaned_blocks, 0);
    assert_eq!(explicit.orphaned_blocks, 0);
}

#[test]
fn downtime_gaps_the_snapshot_stream() {
    let intact = World::new(short_scenario(11)).run();
    let mut faulty = short_scenario(11);
    faulty.faults.observer.downtime_frac = 0.3;
    faulty.faults.observer.downtime_spells = 2;
    let damaged = World::new(faulty).run();

    assert!(
        damaged.snapshots.len() < intact.snapshots.len(),
        "downtime must drop windows: {} vs {}",
        damaged.snapshots.len(),
        intact.snapshots.len()
    );
    // Roughly the requested fraction is missing (spell placement rounds).
    let kept = damaged.snapshots.len() as f64 / intact.snapshots.len() as f64;
    assert!((0.55..=0.85).contains(&kept), "kept fraction {kept}");
}

#[test]
fn truncation_marks_detailed_snapshots() {
    let mut scenario = short_scenario(12);
    scenario.faults.observer.truncate_prob = 1.0;
    scenario.faults.observer.truncate_keep_frac = 0.4;
    let out = World::new(scenario).run();
    let detailed: Vec<_> = out.snapshots.iter().filter(|s| s.is_detailed()).collect();
    assert!(!detailed.is_empty());
    assert!(detailed.iter().all(|s| s.is_truncated()));
}

#[test]
fn stale_tip_races_orphan_blocks() {
    let mut scenario = short_scenario(13);
    scenario.faults.stale_tip_prob = 0.4;
    let out = World::new(scenario).run();
    assert!(out.orphaned_blocks > 0, "40% stale probability over 2h found no orphans");
    // Orphans never reach the chain.
    assert!(out.chain.height() > 0);
    assert_eq!(out.block_miners.len() as u64, out.chain.height());
}

#[test]
fn audit_degrades_on_faulty_stream_instead_of_panicking() {
    let mut scenario = short_scenario(14);
    scenario.faults = FaultPlan::scaled(0.7);
    let out = World::new(scenario).run();
    let index = ChainIndex::build(&out.chain);
    let expectation = StreamExpectation::from_run(
        out.scenario.duration,
        out.scenario.snapshot_interval,
        out.scenario.snapshot_detail_every,
    );
    let report = audit_with_snapshots(
        &out.chain,
        &index,
        &out.snapshots,
        expectation,
        AuditConfig::default(),
    )
    .expect("degrades without a floor");
    let coverage = report.coverage.expect("coverage block present");
    assert!(coverage.confidence() < 1.0, "intensity 0.7 must dent coverage");
    assert!(!coverage.is_complete());
    assert!(report.render().contains("degraded observation"));

    // The same stream against a strict floor refuses loudly.
    let strict = expectation.with_min_coverage(0.99);
    let err = audit_with_snapshots(&out.chain, &index, &out.snapshots, strict, AuditConfig::default());
    assert!(matches!(err, Err(AuditError::InsufficientCoverage { .. })));
}

#[test]
fn audit_rejects_fully_dead_observer() {
    let out = World::new(short_scenario(15)).run();
    let index = ChainIndex::build(&out.chain);
    let expectation = StreamExpectation::from_run(7_200, 15, 4);
    let err = audit_with_snapshots(&out.chain, &index, &[], expectation, AuditConfig::default());
    assert_eq!(err.unwrap_err(), AuditError::EmptySnapshotStream);
}

#[test]
fn metric_entry_points_survive_damaged_streams() {
    let mut scenario = short_scenario(16);
    scenario.faults = FaultPlan::scaled(0.9);
    let out = World::new(scenario).run();

    // Unchecked paths: total functions, no panics on gapped input.
    let _ = first_seen_times(&out.snapshots);
    let series = size_series(&out.snapshots);
    assert_eq!(series.len(), out.snapshots.len());
    let frac = congested_fraction(&out.snapshots, 100_000);
    assert!((0.0..=1.0).contains(&frac));

    // Checked paths: Ok on the damaged-but-nonempty stream, typed errors
    // on the hopeless ones.
    assert!(first_seen_times_checked(&out.snapshots).is_ok());
    assert!(size_series_checked(&out.snapshots).is_ok());
    assert_eq!(size_series_checked(&[]), Err(AuditError::EmptySnapshotStream));
    assert_eq!(first_seen_times_checked(&[]).unwrap_err(), AuditError::EmptySnapshotStream);
    assert_eq!(count_violations_checked(&[], 30).unwrap_err(), AuditError::NoDetailedSnapshots);

    // A stream of only aggregate (light) snapshots has no per-tx rows.
    let lights: Vec<MempoolSnapshot> =
        out.snapshots.iter().filter(|s| !s.is_detailed()).cloned().collect();
    assert!(!lights.is_empty());
    assert_eq!(first_seen_times_checked(&lights).unwrap_err(), AuditError::NoDetailedSnapshots);

    // Coverage on the damaged stream stays within [0, 1] everywhere.
    let expectation = StreamExpectation::from_run(
        out.scenario.duration,
        out.scenario.snapshot_interval,
        out.scenario.snapshot_detail_every,
    );
    let cov = SnapshotCoverage::assess(&out.snapshots, expectation.windows, expectation.detailed)
        .with_chain(&out.snapshots, &ChainIndex::build(&out.chain));
    for f in [cov.window_fraction(), cov.detail_fraction(), cov.confirmed_observed_fraction()] {
        assert!((0.0..=1.0).contains(&f), "fraction {f}");
    }
    assert!((0.0..=1.0).contains(&cov.confidence()));
}

#[test]
fn link_faults_slow_but_do_not_corrupt_the_economy() {
    // Heavy loss/duplication/reordering must never produce an invalid
    // block (the run would panic) and the chain still grows.
    let mut scenario = short_scenario(17);
    scenario.faults.link.loss_prob = 0.25;
    scenario.faults.link.duplicate_prob = 0.3;
    scenario.faults.link.reorder_prob = 0.4;
    scenario.faults.link.jitter_ms = 30_000;
    scenario.faults.link.spike_prob = 0.2;
    scenario.faults.link.spike_ms = 60_000;
    scenario.cpfp_prob = 0.4; // stress the parent-packaging invariant
    let out = World::new(scenario).run();
    assert!(out.chain.height() > 0);
    // The audit over the resulting chain completes.
    let index = ChainIndex::build(&out.chain);
    let report = chain_neutrality::audit::audit_chain(&out.chain, &index, AuditConfig::default());
    assert!(!report.render().is_empty());
}
