//! Observer-fleet determinism and adversary-boundary integration tests:
//! a default single-observer fleet with no adversaries must be
//! bit-identical to the pre-fleet world, eclipse windows must honor their
//! half-open `[start, end)` contract at the exact boundaries, and an
//! eclipsed observer must degrade into coverage-stamped verdicts — never
//! a crash.

use chain_neutrality::audit::error::AuditError;
use chain_neutrality::audit::{audit_with_fleet, reconcile, ObserverView, StreamExpectation};
use chain_neutrality::net::{AdversaryPlan, EclipseWindow};
use chain_neutrality::prelude::*;
use chain_neutrality::sim::scenario::ObserverConfig;

fn short_scenario(seed: u64) -> Scenario {
    let mut s = Scenario::base("fleet-it", seed);
    s.duration = 2 * 3_600;
    s
}

/// Expectation matching `short_scenario`'s snapshot schedule.
fn expectation(s: &Scenario) -> StreamExpectation {
    StreamExpectation::from_run(s.duration, s.snapshot_interval, s.snapshot_detail_every)
}

fn views(out: &SimOutput) -> Vec<ObserverView> {
    out.scenario
        .observers
        .iter()
        .zip(&out.observer_streams)
        .map(|(cfg, stream)| ObserverView {
            label: cfg.label.clone(),
            snapshots: stream.clone(),
            expectation: expectation(&out.scenario),
        })
        .collect()
}

#[test]
fn n1_fleet_with_no_adversaries_is_bit_identical_to_default() {
    // The default scenario (implicit single observer) against the same
    // scenario spelled out as an explicit one-node fleet with an explicit
    // empty adversary plan: every observable must match byte for byte.
    let baseline = World::new(short_scenario(0xF1EE7)).run();
    let mut explicit = short_scenario(0xF1EE7);
    explicit.observers = vec![ObserverConfig::default_node()];
    explicit.adversaries = AdversaryPlan::none();
    let fleet = World::new(explicit).run();

    assert_eq!(baseline.chain.tip_hash(), fleet.chain.tip_hash());
    assert_eq!(baseline.chain.height(), fleet.chain.height());
    assert_eq!(baseline.snapshots, fleet.snapshots);
    assert_eq!(baseline.truth.len(), fleet.truth.len());
    assert_eq!(baseline.orphaned_blocks, fleet.orphaned_blocks);

    // The legacy stream and the fleet's first stream are the same object
    // in both runs.
    assert_eq!(fleet.observer_streams.len(), 1);
    assert_eq!(fleet.snapshots, fleet.observer_streams[0]);
    assert_eq!(baseline.snapshots, baseline.observer_streams[0]);
    assert!(fleet.snapshots.iter().all(|s| !s.is_degraded()));
    assert_eq!(fleet.profile.observer_snapshots, vec![fleet.snapshots.len() as u64]);
    assert_eq!(fleet.profile.observer_degraded, vec![0]);
}

#[test]
fn multi_observer_fleet_runs_deterministically_per_stream() {
    // A grown fleet is a *different* world (extra nodes shift the
    // topology draws), but it must still be deterministic run-to-run,
    // keep the legacy stream aliased to the primary's, and record every
    // stream on the same window schedule.
    let mut grown = short_scenario(0xF1EE8);
    grown.observers = vec![
        ObserverConfig::default_node(),
        ObserverConfig { peers: 16, latency_factor: 1.5, ..ObserverConfig::default_node() }
            .named("slow"),
    ];
    let fleet = World::new(grown.clone()).run();
    let again = World::new(grown).run();

    assert_eq!(fleet.chain.tip_hash(), again.chain.tip_hash());
    assert_eq!(fleet.observer_streams, again.observer_streams);
    assert_eq!(fleet.snapshots, fleet.observer_streams[0]);
    assert_eq!(fleet.observer_streams.len(), 2);
    // The slow observer records the same window schedule with its own
    // (latency-shifted) first-seen times.
    assert_eq!(fleet.observer_streams[0].len(), fleet.observer_streams[1].len());
    for (a, b) in fleet.observer_streams[0].iter().zip(&fleet.observer_streams[1]) {
        assert_eq!(a.time, b.time);
    }
}

#[test]
fn eclipse_window_boundaries_are_half_open() {
    // Snapshots land every `snapshot_interval` seconds; align the window
    // to the schedule so the boundary snapshots exist exactly at the
    // open and close instants.
    let mut s = short_scenario(0xEC11);
    let interval = s.snapshot_interval;
    let start = 16 * interval; // 240 s with the 15 s default
    let end = 32 * interval;
    s.adversaries = AdversaryPlan {
        eclipses: vec![EclipseWindow { observer: 0, start_secs: start, end_secs: end }],
        ..AdversaryPlan::none()
    };
    let out = World::new(s).run();

    for snap in &out.snapshots {
        let inside = snap.time >= start && snap.time < end;
        assert_eq!(
            snap.is_degraded(),
            inside,
            "snapshot at t={} (window [{start}, {end})) has wrong stamp",
            snap.time
        );
    }
    // The boundary instants themselves were exercised: a snapshot exactly
    // at the open is degraded, exactly at the close is not.
    assert!(out.snapshots.iter().any(|s| s.time == start && s.is_degraded()));
    assert!(out.snapshots.iter().any(|s| s.time == end && !s.is_degraded()));
    let degraded = out.snapshots.iter().filter(|s| s.is_degraded()).count() as u64;
    assert_eq!(out.profile.observer_degraded, vec![degraded]);
}

#[test]
fn eclipsed_observer_degrades_to_coverage_stamped_verdicts() {
    // A two-observer fleet whose primary is eclipsed for the whole run:
    // the primary must keep emitting (degraded) snapshots, the solo audit
    // must refuse under a coverage floor rather than panic, and the fleet
    // audit must recover through the healthy second observer.
    let mut s = short_scenario(0xEC12);
    s.observers = vec![
        ObserverConfig::default_node(),
        ObserverConfig::default_node().named("backup"),
    ];
    s.adversaries = AdversaryPlan {
        eclipses: vec![EclipseWindow { observer: 0, start_secs: 0, end_secs: s.duration }],
        ..AdversaryPlan::none()
    };
    let out = World::new(s).run();

    // Graceful degradation: the stream exists and every window is
    // coverage-stamped; nothing crashed.
    assert!(!out.snapshots.is_empty());
    assert!(out.snapshots.iter().all(|snap| snap.is_degraded()));
    // The eclipse drops deliveries, so the frozen view must stay behind
    // the healthy observer's.
    let primary_rows: usize = out.observer_streams[0].iter().map(|s| s.len()).sum();
    let backup_rows: usize = out.observer_streams[1].iter().map(|s| s.len()).sum();
    assert!(primary_rows < backup_rows, "eclipsed view should miss rows");

    let index = ChainIndex::build(&out.chain);
    let all_views = views(&out);

    // Solo audit over the eclipsed stream: refuses under a floor, with a
    // typed error — never a panic.
    let mut solo = all_views[0].clone();
    solo.expectation = solo.expectation.with_min_coverage(0.5);
    let err = audit_with_fleet(&out.chain, &index, std::slice::from_ref(&solo), AuditConfig::default());
    assert!(
        matches!(err, Err(AuditError::InsufficientCoverage { .. })),
        "expected coverage refusal, got {err:?}"
    );

    // The fleet heals: the backup observer's healthy windows lift the
    // fused confidence back over the same floor.
    let mut floored = all_views.clone();
    for v in &mut floored {
        v.expectation = v.expectation.with_min_coverage(0.5);
    }
    let (report, fleet) =
        audit_with_fleet(&out.chain, &index, &floored, AuditConfig::default()).expect("fleet recovers");
    assert_eq!(fleet.labels.len(), 2);
    assert_eq!(fleet.coverage.degraded_windows, 0, "healthy eye heals every window");
    let cov = report.coverage.expect("fleet audits carry coverage");
    assert!(cov.confidence() >= 0.5);

    // A fleet that is blind in every eye still refuses with the typed
    // empty-stream error.
    let blind = [
        ObserverView { label: "a".into(), snapshots: Vec::new(), expectation: expectation(&out.scenario) },
        ObserverView { label: "b".into(), snapshots: Vec::new(), expectation: expectation(&out.scenario) },
    ];
    assert_eq!(reconcile(&blind).expect_err("no eyes"), AuditError::EmptySnapshotStream);
}
