//! The event-log pipeline end to end: epoch-chunked simulation into the
//! binary log must be byte-identical to encoding a finished monolithic
//! run, for any epoch length; and replaying a log through the streaming
//! auditor — spilled or not — must reproduce the batch verdict
//! bit-for-bit.

use chain_neutrality::audit::streaming::{StreamingAuditor, StreamingConfig};
use chain_neutrality::audit::{audit_with_snapshots, SpilledAuditor, StreamExpectation};
use chain_neutrality::data::log::{write_run, LogEvent, LogReader, LogWriter};
use chain_neutrality::prelude::*;
use chain_neutrality::sim::EventSink;
use std::io::Cursor;

/// Epoch lengths that exercise the interesting segment shapes: a segment
/// per block, a ragged partial tail, and a tail that never fills.
const EPOCHS: [u64; 3] = [1, 7, 50];

/// Fans one simulation's event stream into several log writers, so a
/// single `run_streamed` pass feeds every epoch length under test.
struct Fan<'a>(Vec<LogWriter<&'a mut Vec<u8>>>);

impl EventSink for Fan<'_> {
    fn on_start(&mut self, seeds: &[Transaction]) {
        for w in &mut self.0 {
            w.on_start(seeds);
        }
    }
    fn on_block(&mut self, block: &Block) {
        for w in &mut self.0 {
            w.on_block(block);
        }
    }
    fn on_snapshot(&mut self, snapshot: &MempoolSnapshot) {
        for w in &mut self.0 {
            w.on_snapshot(snapshot);
        }
    }
}

fn expectation(out: &SimOutput) -> StreamExpectation {
    let s = &out.scenario;
    StreamExpectation::from_run(s.duration, s.snapshot_interval, s.snapshot_detail_every)
}

/// For each quick dataset: one chunked simulation fanned into a writer
/// per epoch length must produce the same bytes as encoding the finished
/// monolithic run at that epoch length. This is the segment-handoff
/// oracle — intern-table resets, time-base resets, and partial tail
/// segments all have to land on the same byte boundaries.
#[test]
fn chunked_simulation_matches_monolithic_encoding_byte_for_byte() {
    for (name, scenario) in [
        ("A", dataset_a(Scale::Quick)),
        ("B", dataset_b(Scale::Quick)),
        ("C", dataset_c(Scale::Quick)),
    ] {
        let mut chunked: Vec<Vec<u8>> = EPOCHS.iter().map(|_| Vec::new()).collect();
        let mut fan = Fan(chunked
            .iter_mut()
            .zip(EPOCHS)
            .map(|(buf, epoch)| LogWriter::new(buf, epoch))
            .collect());
        let summary = World::new(scenario.clone()).run_streamed(&mut fan);
        for writer in fan.0 {
            writer.finish().expect("chunked log finishes");
        }
        assert!(summary.blocks > 0, "dataset {name} must mine blocks");

        let out = World::new(scenario).run();
        for (buf, epoch) in chunked.iter().zip(EPOCHS) {
            let mut mono = Vec::new();
            let stats = write_run(&out, epoch, &mut mono).expect("monolithic encode");
            assert_eq!(stats.blocks, summary.blocks);
            assert_eq!(stats.snapshots, summary.snapshots);
            assert_eq!(
                *buf, mono,
                "dataset {name}, epoch {epoch}: chunked and monolithic logs diverge"
            );
        }
    }
}

/// Replaying a log through the streaming auditor must reproduce the batch
/// `audit_with_snapshots` verdict bit-for-bit — and spilling the digest
/// to a store along the way must change nothing.
#[test]
fn log_replay_reproduces_the_batch_verdict() {
    for (name, scenario) in [("A", dataset_a(Scale::Quick)), ("C", dataset_c(Scale::Quick))] {
        let out = World::new(scenario).run();
        let exp = expectation(&out);
        let index = ChainIndex::build(&out.chain);
        let batch =
            audit_with_snapshots(&out.chain, &index, &out.snapshots, exp, AuditConfig::default())
                .expect("batch audits");

        let mut bytes = Vec::new();
        write_run(&out, 50, &mut bytes).expect("log encodes");

        // Plain streaming replay.
        let mut reader = LogReader::new(Cursor::new(&bytes[..])).expect("valid header");
        let mut plain = StreamingAuditor::new(reader.initial_utxos(), StreamingConfig::new(exp));
        while let Some(event) = reader.next_event().expect("log replays") {
            match &event {
                LogEvent::Block(b) => plain.push_block(b).expect("block replays"),
                LogEvent::Snapshot(s) => plain.push_snapshot(s),
            }
        }
        let verdict = plain.verdict().expect("streamed verdict");
        assert_eq!(verdict, batch, "dataset {name}: streamed verdict diverges from batch");

        // Spilled replay: digest checkpointed to an in-memory store every
        // few sealed blocks.
        let mut reader = LogReader::new(Cursor::new(&bytes[..])).expect("valid header");
        let mut spilled = SpilledAuditor::new(
            StreamingAuditor::new(reader.initial_utxos(), StreamingConfig::new(exp)),
            Cursor::new(Vec::new()),
            4,
        );
        while let Some(event) = reader.next_event().expect("log replays") {
            match &event {
                LogEvent::Block(b) => spilled.push_block(b).expect("block replays"),
                LogEvent::Snapshot(s) => spilled.push_snapshot(s),
            }
        }
        assert!(
            spilled.spilled_segments() > 0,
            "dataset {name}: the spill path must actually engage"
        );
        let verdict = spilled.verdict().expect("spilled verdict");
        assert_eq!(verdict, batch, "dataset {name}: spilled verdict diverges from batch");
    }
}
