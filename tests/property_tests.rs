//! Property-based tests over the core data structures and algorithms.

use chain_neutrality::audit::pairs::{
    count_violations_cdq, count_violations_reference, PairObservation,
};
use chain_neutrality::prelude::*;
use chain_neutrality::stats::binomial::binomial_test_normal_approx;
use chain_neutrality::stats::fisher_combine;
use cn_chain::{Decodable, Encodable};
use proptest::prelude::*;

fn arb_transaction() -> impl Strategy<Value = Transaction> {
    (
        proptest::collection::vec((any::<[u8; 32]>(), 0u32..4, 0usize..200, 0usize..120), 1..5),
        proptest::collection::vec((1u64..10_000_000, any::<[u8; 20]>()), 1..5),
        any::<u32>(),
    )
        .prop_map(|(inputs, outputs, lock_time)| {
            let mut b = Transaction::builder().lock_time(lock_time);
            for (txid, vout, ss, wit) in inputs {
                b = b.add_input_with_sizes(txid.into(), vout, ss, wit);
            }
            for (value, payload) in outputs {
                b = b.pay_to(Address::p2pkh(payload), Amount::from_sat(value));
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transaction_round_trips(tx in arb_transaction()) {
        let bytes = tx.encode_to_bytes();
        let decoded = Transaction::decode_all(&bytes).expect("round trip");
        prop_assert_eq!(&decoded, &tx);
        prop_assert_eq!(decoded.txid(), tx.txid());
        prop_assert_eq!(decoded.weight(), tx.weight());
    }

    #[test]
    fn vsize_respects_weight_identity(tx in arb_transaction()) {
        prop_assert_eq!(tx.vsize(), tx.weight().div_ceil(4));
        prop_assert!(tx.weight() >= tx.encode_to_bytes().len() as u64);
    }

    #[test]
    fn address_base58_round_trips(payload in any::<[u8; 20]>(), p2sh in any::<bool>()) {
        let addr = if p2sh { Address::p2sh(payload) } else { Address::p2pkh(payload) };
        let s = addr.to_base58check();
        prop_assert_eq!(Address::from_base58check(&s), Some(addr));
        prop_assert_eq!(Address::from_script_pubkey(&addr.script_pubkey()), Some(addr));
    }

    #[test]
    fn cdq_equals_reference(
        raw in proptest::collection::vec((0u64..2_000, 0u64..100_000, 0u64..60), 0..120),
        epsilon in 0u64..50,
    ) {
        let obs: Vec<PairObservation> = raw
            .into_iter()
            .map(|(t, rate, h)| PairObservation {
                received: t,
                fee_rate: FeeRate::from_sat_per_kvb(rate),
                height: h,
            })
            .collect();
        let reference = count_violations_reference(&obs, epsilon);
        let cdq = count_violations_cdq(&obs, epsilon);
        prop_assert_eq!(cdq, reference);
    }

    #[test]
    fn binomial_tails_complement(x in 0u64..50, extra in 0u64..50, theta in 0.01f64..0.99) {
        let y = x + extra;
        let upper = binomial_test(x, y, theta, Tail::Upper).p_value;
        let lower = binomial_test(x, y, theta, Tail::Lower).p_value;
        // P(B >= x) + P(B <= x) = 1 + P(B = x) >= 1.
        prop_assert!(upper + lower >= 1.0 - 1e-9);
        prop_assert!((0.0..=1.0).contains(&upper));
        prop_assert!((0.0..=1.0).contains(&lower));
    }

    #[test]
    fn normal_approx_tracks_exact_when_large(frac in 0.05f64..0.95, theta in 0.2f64..0.8) {
        let y = 5_000u64;
        let x = (frac * y as f64) as u64;
        for tail in [Tail::Upper, Tail::Lower] {
            let exact = binomial_test(x, y, theta, tail).p_value;
            let approx = binomial_test_normal_approx(x, y, theta, tail).p_value;
            prop_assert!((exact - approx).abs() < 1e-2,
                "x={} exact={} approx={}", x, exact, approx);
        }
    }

    #[test]
    fn fisher_combination_within_bounds(ps in proptest::collection::vec(0.0f64..=1.0, 1..10)) {
        let combined = fisher_combine(&ps);
        prop_assert!((0.0..=1.0).contains(&combined));
    }

    #[test]
    fn ecdf_is_monotone_cdf(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let e = Ecdf::new(values.clone());
        prop_assert_eq!(e.eval(f64::NEG_INFINITY), 0.0);
        prop_assert_eq!(e.eval(f64::INFINITY), 1.0);
        let (lo, hi) = (e.quantile(0.25), e.quantile(0.75));
        prop_assert!(lo <= hi);
        prop_assert!(e.eval(e.max()) == 1.0);
    }

    #[test]
    fn amount_checked_arithmetic_consistent(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let (x, y) = (Amount::from_sat(a), Amount::from_sat(b));
        let sum = x.checked_add(y).expect("no overflow in range");
        prop_assert_eq!(sum.checked_sub(y), Some(x));
        prop_assert_eq!(sum.saturating_sub(y), x);
        if a >= b {
            prop_assert_eq!(x.checked_sub(y).map(|d| d + y), Some(x));
        } else {
            prop_assert_eq!(x.checked_sub(y), None);
        }
    }

    #[test]
    fn fee_rate_round_trips_via_fee(rate in 0u64..10_000_000, vsize in 1u64..100_000) {
        let r = FeeRate::from_sat_per_kvb(rate);
        let fee = r.fee_for_vsize(vsize);
        // fee_for_vsize rounds up, so the realized rate never undershoots.
        let realized = FeeRate::from_fee_and_vsize(fee, vsize);
        prop_assert!(realized >= r);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mempool_indexes_stay_consistent(
        ops in proptest::collection::vec((any::<[u8; 32]>(), 1u64..500, any::<bool>()), 1..80)
    ) {
        let mut pool = Mempool::new(MempoolPolicy::accept_all());
        let mut resident: Vec<Txid> = Vec::new();
        for (seed, rate, remove) in ops {
            if remove && !resident.is_empty() {
                let victim = resident.swap_remove(0);
                pool.remove_with_descendants(&victim);
                resident.retain(|t| pool.contains(t));
            } else {
                let tx = Transaction::builder()
                    .add_input_with_sizes(seed.into(), 0, 107, 0)
                    .pay_to(Address::from_label("r"), Amount::from_sat(10_000))
                    .build();
                let fee = Amount::from_sat(tx.vsize() * rate);
                if let Ok(txid) = pool.add(tx, fee, 0) {
                    resident.push(txid);
                }
            }
            // Invariants: size accounting and index agreement.
            let total: u64 = pool.iter().map(|e| e.vsize()).sum();
            prop_assert_eq!(total, pool.total_vsize());
            prop_assert_eq!(pool.iter_by_fee_rate_desc().count(), pool.len());
            let mut last: Option<FeeRate> = None;
            for e in pool.iter_by_fee_rate_desc() {
                if let Some(prev) = last {
                    prop_assert!(e.fee_rate() <= prev);
                }
                last = Some(e.fee_rate());
            }
        }
    }

    #[test]
    fn assembler_output_is_always_valid(
        ops in proptest::collection::vec((any::<[u8; 32]>(), 1u64..400, any::<bool>()), 1..60),
        budget_blocks in 1u64..3,
    ) {
        use chain_neutrality::miner::BlockAssembler;
        // Random mempool with CPFP chains.
        let mut pool = Mempool::new(MempoolPolicy::accept_all());
        let mut parents: Vec<Transaction> = Vec::new();
        for (seed, rate, make_child) in ops {
            let tx = if make_child && !parents.is_empty() {
                let parent = &parents[(seed[0] as usize) % parents.len()];
                Transaction::builder()
                    .add_input_with_sizes(parent.txid(), 0, 107, 0)
                    .pay_to(Address::from_label("c"), Amount::from_sat(5_000))
                    .build()
            } else {
                Transaction::builder()
                    .add_input_with_sizes(seed.into(), 0, 107, 0)
                    .pay_to(Address::from_label("p"), Amount::from_sat(9_000))
                    .build()
            };
            let fee = Amount::from_sat(tx.vsize() * rate);
            if pool.add(tx.clone(), fee, 0).is_ok() && !make_child {
                parents.push(tx);
            }
        }
        let params = Params {
            max_block_weight: budget_blocks * 40_000,
            ..Params::mainnet()
        };
        let mut assembler = BlockAssembler::new(params);
        let tpl = assembler.assemble(&pool, |_| Priority::Normal);
        // Weight budget respected.
        prop_assert!(tpl.total_weight <= assembler.weight_budget());
        // Topological validity: every in-pool parent of an included child
        // appears earlier in the template.
        let mut placed = std::collections::HashSet::new();
        for tx in &tpl.transactions {
            for input in tx.inputs() {
                if pool.contains(&input.prevout.txid) {
                    prop_assert!(
                        placed.contains(&input.prevout.txid),
                        "child before parent in template"
                    );
                }
            }
            placed.insert(tx.txid());
        }
        // No duplicates, totals consistent.
        prop_assert_eq!(placed.len(), tpl.transactions.len());
        let sum: Amount = tpl.fees.iter().copied().sum();
        prop_assert_eq!(sum, tpl.total_fees);
    }

    #[test]
    fn ppe_bounded_for_random_blocks(rates in proptest::collection::vec(1u64..100_000, 1..200)) {
        use chain_neutrality::audit::index::{BlockInfo, TxRecord};
        let txs: Vec<TxRecord> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| TxRecord {
                txid: {
                    let mut b = [0u8; 32];
                    b[..8].copy_from_slice(&(i as u64).to_le_bytes());
                    Txid::from(b)
                },
                height: 0,
                position: i,
                fee: Amount::from_sat(r),
                vsize: 250,
                is_cpfp: false,
            })
            .collect();
        let block = BlockInfo {
            height: 0,
            hash: BlockHash::ZERO,
            time: 0,
            miner: None,
            coinbase_wallets: vec![],
            txs,
        };
        let ppe = block_ppe(&block).expect("non-empty");
        prop_assert!((0.0..=50.0 + 1e-9).contains(&ppe), "PPE {}", ppe);
        // SPPE over all txs in a block sums to ~zero (signed displacements cancel).
        let sum: f64 = chain_neutrality::audit::sppe::block_sppes(&block)
            .iter()
            .map(|(_, s)| s)
            .sum();
        prop_assert!(sum.abs() < 1e-6, "SPPE sum {}", sum);
    }
}
