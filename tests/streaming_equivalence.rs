//! Streaming ↔ batch equivalence: the online auditor over any chunking or
//! interleaving of a run's event stream must produce verdicts bit-identical
//! to the batch `audit_with_snapshots` over the finished run — including
//! its refusal behavior — and its windowed state must stay bounded.

use chain_neutrality::audit::streaming::{interleave, StreamEvent, StreamingAuditor, StreamingConfig};
use chain_neutrality::audit::{audit_with_snapshots, AuditError, StreamExpectation};
use chain_neutrality::prelude::*;
use chain_neutrality::sim::congestion::CongestionProfile;

/// A congested two-pool world with a self-accelerating pool, so the batch
/// report carries real findings for the equivalence check to pin.
fn world(seed: u64) -> SimOutput {
    let mut scenario = Scenario::base("stream-eq", seed);
    scenario.duration = 6 * 3_600;
    scenario.params.max_block_weight = 400_000;
    scenario.congestion = CongestionProfile::flat(0.9);
    scenario.self_interest_rate = 0.012;
    scenario.pools = vec![
        PoolConfig::honest("Honest", 0.6, 2),
        PoolConfig::honest("Greedy", 0.4, 2).with_behavior(PoolBehavior::SelfInterest),
    ];
    World::new(scenario).run()
}

fn expectation(out: &SimOutput) -> StreamExpectation {
    let s = &out.scenario;
    StreamExpectation::from_run(s.duration, s.snapshot_interval, s.snapshot_detail_every)
}

fn batch_report(out: &SimOutput, expectation: StreamExpectation) -> AuditReport {
    let index = ChainIndex::build(&out.chain);
    audit_with_snapshots(&out.chain, &index, &out.snapshots, expectation, AuditConfig::default())
        .expect("batch audits")
}

fn fresh_auditor(out: &SimOutput, expectation: StreamExpectation) -> StreamingAuditor {
    StreamingAuditor::new(out.chain.initial_utxos(), StreamingConfig::new(expectation))
}

/// A randomized interleaving of the run's blocks and snapshots: each
/// source keeps its internal order (blocks must connect in height order),
/// but which source supplies the next event is a coin flip.
fn random_interleaving<'a>(out: &'a SimOutput, rng: &mut SimRng) -> Vec<StreamEvent<'a>> {
    let blocks = out.chain.blocks();
    let snapshots = &out.snapshots;
    let mut events = Vec::with_capacity(blocks.len() + snapshots.len());
    let (mut bi, mut si) = (0usize, 0usize);
    while bi < blocks.len() || si < snapshots.len() {
        let take_block = if bi == blocks.len() {
            false
        } else if si == snapshots.len() {
            true
        } else {
            rng.next_bool(0.5)
        };
        if take_block {
            events.push(StreamEvent::Block(&blocks[bi]));
            bi += 1;
        } else {
            events.push(StreamEvent::Snapshot(&snapshots[si]));
            si += 1;
        }
    }
    events
}

#[test]
fn whole_stream_at_once_matches_batch() {
    let out = world(41);
    let exp = expectation(&out);
    let batch = batch_report(&out, exp);
    assert!(!batch.findings.is_empty(), "the world must produce findings to pin");

    let mut auditor = fresh_auditor(&out, exp);
    for ev in interleave(out.chain.blocks(), &out.snapshots) {
        auditor.push_event(&ev).expect("replays");
    }
    let stream = auditor.verdict().expect("audits");
    assert_eq!(stream, batch, "streaming verdict must be bit-identical to batch");
    assert_eq!(stream.render(), batch.render());
}

#[test]
fn single_event_chunks_and_interior_verdicts_match_batch() {
    // Push one event at a time and take a verdict every few events: the
    // interior calls must neither fail unexpectedly nor perturb the final
    // verdict (verdict() is a pure function of the ingested events).
    let out = world(42);
    let exp = expectation(&out);
    let batch = batch_report(&out, exp);

    let mut auditor = fresh_auditor(&out, exp);
    let events = interleave(out.chain.blocks(), &out.snapshots);
    for (i, ev) in events.iter().enumerate() {
        auditor.push_event(ev).expect("replays");
        if i % 97 == 0 {
            let _ = auditor.verdict();
            let _ = auditor.rolling();
        }
    }
    let first = auditor.verdict().expect("audits");
    let second = auditor.verdict().expect("audits");
    assert_eq!(first, second, "verdict() must be repeatable");
    assert_eq!(first, batch);
}

#[test]
fn randomized_chunkings_and_interleavings_match_batch() {
    let out = world(43);
    let exp = expectation(&out);
    let batch = batch_report(&out, exp);

    // Three seeded random chunkings of the canonical time-ordered stream:
    // chunk boundaries are administrative, so rolling telemetry must agree
    // too (same ingested prefix at the end).
    let canonical = interleave(out.chain.blocks(), &out.snapshots);
    let mut rollings = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut auditor = fresh_auditor(&out, exp);
        let mut i = 0usize;
        while i < canonical.len() {
            let chunk = (i + 1 + rng.next_below(64) as usize).min(canonical.len());
            for ev in &canonical[i..chunk] {
                auditor.push_event(ev).expect("replays");
            }
            i = chunk;
        }
        assert_eq!(auditor.verdict().expect("audits"), batch, "chunking seed {seed}");
        rollings.push(auditor.rolling());
    }
    assert!(rollings.windows(2).all(|w| w[0] == w[1]), "rolling is chunking-invariant");

    // Three seeded random interleavings of blocks against snapshots: the
    // exact verdict depends only on the event *set*, not arrival order.
    for seed in [7u64, 8, 9] {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut auditor = fresh_auditor(&out, exp);
        for ev in random_interleaving(&out, &mut rng) {
            auditor.push_event(&ev).expect("replays");
        }
        assert_eq!(auditor.verdict().expect("audits"), batch, "interleaving seed {seed}");
    }
}

#[test]
fn refusal_parity_with_batch() {
    let out = world(44);
    let index = ChainIndex::build(&out.chain);
    let exp = expectation(&out);

    // Empty stream: both refuse identically.
    let mut blocks_only = fresh_auditor(&out, exp);
    for b in out.chain.blocks() {
        blocks_only.push_block(b).expect("replays");
    }
    assert_eq!(blocks_only.verdict(), Err(AuditError::EmptySnapshotStream));
    assert_eq!(
        audit_with_snapshots(&out.chain, &index, &[], exp, AuditConfig::default()),
        Err(AuditError::EmptySnapshotStream),
    );

    // A strict coverage floor over a decimated stream: identical refusal,
    // including the measured coverage payload.
    let strict = exp.with_min_coverage(0.95);
    let kept: Vec<MempoolSnapshot> =
        out.snapshots.iter().step_by(5).cloned().collect();
    let mut auditor =
        StreamingAuditor::new(out.chain.initial_utxos(), StreamingConfig::new(strict));
    for b in out.chain.blocks() {
        auditor.push_block(b).expect("replays");
    }
    for s in &kept {
        auditor.push_snapshot(s);
    }
    let batch =
        audit_with_snapshots(&out.chain, &index, &kept, strict, AuditConfig::default());
    assert!(matches!(batch, Err(AuditError::InsufficientCoverage { .. })));
    assert_eq!(auditor.verdict(), batch);
}

#[test]
fn windowed_state_stays_far_below_processed_volume() {
    let out = world(45);
    let exp = expectation(&out);
    let mut auditor = fresh_auditor(&out, exp);
    for ev in interleave(out.chain.blocks(), &out.snapshots) {
        auditor.push_event(&ev).expect("replays");
    }
    let c = auditor.counters();
    assert!(c.rows_processed > 10_000, "the run must be row-heavy ({})", c.rows_processed);
    assert!(
        c.peak_window_rows * 4 <= c.rows_processed,
        "windowed state must stay O(window), not O(history): peak {} vs {} processed",
        c.peak_window_rows,
        c.rows_processed,
    );
    let rolling = auditor.rolling();
    assert_eq!(rolling.tip_blocks, out.chain.blocks().len() as u64);
    assert!(rolling.sealed_blocks <= rolling.tip_blocks);
    assert!(!rolling.miners.is_empty());
    assert!(rolling.delay_p50_p90.is_some());
}
