//! Offline stand-in for `bytes`: `Bytes`/`BytesMut` plus the subset of the
//! `Buf`/`BufMut` traits `cn-chain`'s wire encoding uses. `Bytes` is a
//! read cursor over an owned buffer — consuming reads advance it — and
//! `BytesMut` is an append-only builder that freezes into `Bytes`.

/// Read-side operations over a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// A view of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    /// Panics when fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies exactly `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write-side operations over a growable byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An owned, cheaply cloneable byte buffer read through a cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: std::sync::Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: std::sync::Arc::new(data.to_vec()), pos: 0 }
    }

    /// Wraps a static slice (copied — this stand-in has one owned repr).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// The unread bytes as a slice.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data: std::sync::Arc::new(data), pos: 0 }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.pos += cnt;
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut w = BytesMut::new();
        w.put_u8(0xab);
        w.put_u16_le(0x1234);
        w.put_u32_le(0xdead_beef);
        w.put_i32_le(-7);
        w.put_u64_le(u64::MAX - 1);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_i32_le(), -7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn cursor_len_tracks_consumption() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        b.advance(1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![2, 3, 4]);
        assert_eq!(&b[..], &[2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        Bytes::copy_from_slice(&[1]).advance(2);
    }
}
