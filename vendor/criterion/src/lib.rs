//! Offline stand-in for `criterion`.
//!
//! A minimal timing harness covering the API the workspace benches use:
//! `Criterion::benchmark_group`, `sample_size`, `measurement_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. Each
//! benchmark runs a handful of timed iterations and prints the mean —
//! good enough to compare orders of magnitude, with no statistics,
//! reports, or HTML output.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _criterion: self, samples: 10 }
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Cap the sample count: these benches also execute under
        // `cargo test`, where they must stay fast.
        self.samples = n.clamp(1, 10);
        self
    }

    /// Accepted for API compatibility; the stand-in's run length is
    /// governed by `sample_size` alone.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: self.samples, elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher);
        bencher.report(&id.0);
        self
    }

    /// Times `f` under `id`, passing it `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: self.samples, elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher, input);
        bencher.report(&id.0);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Identifies one benchmark, optionally parameterised by an input label.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId(name.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId(name)
    }
}

/// Runs and times the benchmarked closure.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `samples` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("  {id}: no iterations recorded");
        } else {
            let mean = self.elapsed / self.iters as u32;
            println!("  {id}: mean {mean:?} over {} iters", self.iters);
        }
    }
}

/// Declares a runner function invoking each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // one warm-up call plus three timed samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats_parameter() {
        let id = BenchmarkId::new("algo", 42);
        assert_eq!(id.0, "algo/42");
    }
}
