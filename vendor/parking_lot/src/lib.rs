//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex` API the
//! workspace uses, implemented over `std::sync::Mutex` (a poisoned lock is
//! recovered rather than propagated, matching parking_lot semantics).

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value in a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
