//! `any::<T>()` and the `Arbitrary` trait for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`, returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Keep generated floats finite; NaN/inf would make every numeric
        // property vacuously about IEEE edge cases rather than the code.
        let v = f64::from_bits(rng.next_u64());
        if v.is_finite() {
            v
        } else {
            rng.unit_f64()
        }
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let word = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_fill_all_bytes() {
        let mut rng = TestRng::for_test("arrays");
        let a: [u8; 32] = Arbitrary::arbitrary(&mut rng);
        let b: [u8; 32] = Arbitrary::arbitrary(&mut rng);
        assert_ne!(a, b);
        assert!(a.iter().any(|&x| x != 0));
    }

    #[test]
    fn f64_always_finite() {
        let mut rng = TestRng::for_test("floats");
        for _ in 0..1000 {
            assert!(f64::arbitrary(&mut rng).is_finite());
        }
    }
}
