//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bounds for a generated collection.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max_inclusive: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_inclusive: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max_inclusive: *r.end() }
    }
}

/// Strategy generating a `Vec` of values from `element`, returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A strategy for vectors whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::for_test("vec-len");
        for _ in 0..200 {
            let v = vec(0u8..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = vec(0u8..5, 3usize).generate(&mut rng);
        assert_eq!(fixed.len(), 3);
    }
}
