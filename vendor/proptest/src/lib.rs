//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: `Strategy` with `prop_map`, range and tuple strategies,
//! `any::<T>()`, `proptest::collection::vec`, `ProptestConfig`, and the
//! `proptest!` / `prop_assert*` macros. Generation is deterministic — the
//! RNG is seeded from the test name — and there is no shrinking: a failing
//! case panics with the values visible via the assertion message.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion backing [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}
