//! The `Strategy` trait and the range, tuple, and map combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // span can exceed u64::MAX only for full 64-bit-wide ranges;
                // fold the 64-bit draw into the span with a widening multiply.
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $ty
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        v.clamp(self.start, self.end)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        (lo + rng.unit_f64() * (hi - lo)).clamp(lo, hi)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let f = (0.25f64..=0.75).generate(&mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = (0u8..10, 0u8..10).prop_map(|(a, b)| a as u16 + b as u16);
        for _ in 0..100 {
            assert!(strat.generate(&mut rng) < 20);
        }
    }

    #[test]
    fn just_clones_value() {
        let mut rng = TestRng::for_test("just");
        assert_eq!(Just(vec![1, 2]).generate(&mut rng), vec![1, 2]);
    }
}
