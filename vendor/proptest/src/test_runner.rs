//! Test configuration and the deterministic generation RNG.

/// How many cases each property runs, mirroring proptest's config type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic xorshift-based generator seeded from the test name, so
/// every run of a property sees the same case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name via FNV-1a.
    pub fn for_test(name: &str) -> TestRng {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            acc ^= b as u64;
            acc = acc.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: acc | 1 }
    }

    /// Next raw 64 bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_test("bound");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
