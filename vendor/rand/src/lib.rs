//! Offline stand-in for `rand`: just the `TryRng`/`Rng` trait pair that
//! `cn_stats::SimRng` implements, with the infallible blanket impl.

use std::convert::Infallible;

/// A fallible random-number source.
pub trait TryRng {
    /// The error produced when the source fails.
    type Error;

    /// Next 32 random bits.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

    /// Next 64 random bits.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

    /// Fills `dest` with random bytes.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
}

/// An infallible random-number source.
pub trait Rng {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: TryRng<Error = Infallible>> Rng for R {
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
        }
    }

    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self.try_fill_bytes(dest) {
            Ok(()) => (),
        }
    }
}
