//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde as `#[derive(Serialize, Deserialize)]`
//! markers on configuration types — nothing in-tree actually serializes.
//! This stub supplies marker traits (blanket-implemented, so any generic
//! bound is satisfiable) and re-exports no-op derive macros.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker for types deserializable without borrowing.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}
