//! No-op derive macros backing the offline `serde` stand-in: the marker
//! traits are blanket-implemented in `serde`, so the derives expand to
//! nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
